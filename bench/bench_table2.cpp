// Table II — evaluation of existing accelerators on codec avatar decoding:
// Snapdragon-865-class SoC, DNNBuilder (schemes 1-3 = Z7045/ZU17EG/ZU9CG,
// 8-bit), and HybridDNN (schemes 1 and 2&3, 16-bit), all on the mimic
// decoder. Reproduces the paper's headline: none of them clears the 90+ FPS
// VR bar, and the FPGA baselines stop scaling.
#include <cstdio>
#include <string>
#include <vector>

#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "baselines/dnnbuilder.hpp"
#include "baselines/hybriddnn.hpp"
#include "baselines/soc865.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace fcad;

  std::printf("=== Table II: existing accelerators on the mimic decoder ===\n\n");
  nn::Graph mimic = nn::zoo::mimic_decoder();
  auto model = arch::reorganize(mimic);
  if (!model.is_ok()) {
    std::fprintf(stderr, "%s\n", model.status().to_string().c_str());
    return 1;
  }

  TablePrinter t({"Scheme", "Utilization", "FPS", "Efficiency"});

  {
    const baselines::Soc865Result soc = baselines::run_soc865(*model);
    t.add_row({"865 SoC (8-bit)", "-", format_fixed(soc.fps, 1),
               format_percent(soc.efficiency, 1)});
  }

  const std::vector<arch::Platform> schemes = {
      arch::platform_z7045(), arch::platform_zu17eg(), arch::platform_zu9cg()};

  t.add_separator();
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const baselines::DnnBuilderResult r =
        baselines::run_dnnbuilder(*model, schemes[i], nn::DataType::kInt8);
    t.add_row({"DNNBuilder (8-bit) " + std::to_string(i + 1),
               "DSP: " + std::to_string(r.dsps) +
                   ", BRAM: " + std::to_string(r.brams),
               format_fixed(r.fps, 1), format_percent(r.efficiency, 1)});
  }

  t.add_separator();
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const baselines::HybridDnnResult r =
        baselines::run_hybriddnn(*model, schemes[i], nn::DataType::kInt16);
    std::string note = r.bram_blocked_scaling ? " (BRAM-blocked)" : "";
    t.add_row({"HybridDNN (16-bit) " + std::to_string(i + 1),
               "DSP: " + std::to_string(r.dsps) +
                   ", BRAM: " + std::to_string(r.brams) + note,
               format_fixed(r.fps, 1), format_percent(r.efficiency, 1)});
  }

  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "paper reference: 865 35.8 FPS / 16.9%%; DNNBuilder 30.5 FPS at "
      "81.6%% -> 50.4%% -> 28.8%%; HybridDNN 12.1 FPS (77.5%%) then 22.0 "
      "FPS (70.4%%) for both larger schemes.\n"
      "shape to check: SoC inefficient; DNNBuilder FPS flat while "
      "efficiency collapses; HybridDNN scales once then sticks.\n");
  return 0;
}
