// Quantization x frequency co-exploration (our extension): the paper fixes
// 200 MHz and treats quantization Q as a per-run customization; this bench
// explores the grid on ZU9CG and prints the (min-FPS, DSP) Pareto frontier,
// the deployment view an HMD architect actually needs.
//
//   bench_sweep [--threads N] [--strategy name] [--csv out.csv]
//               [--json out.json] [--artifact-cache DIR]
//
// The sweep runs through core::Pipeline, so --artifact-cache DIR enables
// the spec-hash-keyed artifact cache: a repeated run with the same flags
// reloads the previous SearchArtifact from DIR instead of re-searching
// (bit-identical table/CSV/JSON output, "artifact cache: N hit(s)" on
// stdout).
#include <cstdio>
#include <string>

#include "arch/platform.hpp"
#include "core/pipeline.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "obs/export.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fcad;

  auto args = ArgParser::parse(argc, argv);
  if (!args.is_ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().to_string().c_str());
    return 1;
  }

  obs::ObservationScope obs_scope(args->get("metrics-out", ""),
                                  args->get("trace-out", ""));

  std::printf(
      "=== quantization x frequency sweep, ZU9CG, batch {1,2,2} ===\n\n");

  dse::SearchSpec spec;
  spec.kind = dse::SearchKind::kSweep;
  spec.sweep.frequencies_mhz = {150, 200, 250, 300};
  spec.search.population = 100;
  spec.search.iterations = 12;
  spec.search.seed = 4242;
  spec.strategy = args->get("strategy", "particle-swarm");
  auto threads_flag = args->get_int("threads", 0);
  if (!threads_flag.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 threads_flag.status().to_string().c_str());
    return 1;
  }
  spec.control.threads = static_cast<int>(*threads_flag);
  spec.customization.batch_sizes = {1, 2, 2};
  const std::string csv_path = args->get("csv", "");
  const std::string json_path = args->get("json", "");

  core::Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  pipeline.set_artifact_cache_dir(args->get("artifact-cache", ""));
  if (Status s = pipeline.optimize(spec); !s.is_ok()) {
    std::fprintf(stderr, "error: %s\n", s.to_string().c_str());
    return 1;
  }
  const std::vector<dse::SweepPoint>& points =
      pipeline.search()->outcome.sweep;

  TablePrinter t({"datapath", "clock", "min FPS", "DSP", "BRAM", "BW (GB/s)",
                  "efficiency", "Pareto"});
  for (const dse::SweepPoint& p : points) {
    const arch::AcceleratorEval& eval = p.result.eval;
    t.add_row({p.datapath,
               format_fixed(p.freq_mhz, 0) + " MHz",
               format_fixed(eval.min_fps, 1), std::to_string(eval.dsps),
               std::to_string(eval.brams), format_fixed(eval.bw_gbps, 2),
               format_percent(eval.efficiency, 1),
               p.pareto_optimal ? "*" : ""});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "shape to check: int8 dominates int16 at equal clock (DSP packing);\n"
      "FPS scales with clock until DDR bandwidth bites; the frontier should\n"
      "be int8 points ordered by clock.\n");
  if (!pipeline.artifact_cache_dir().empty()) {
    std::printf("artifact cache: %d hit(s), %d miss(es)\n",
                pipeline.artifact_cache_hits(),
                pipeline.artifact_cache_misses());
  }

  if (!csv_path.empty()) {
    CsvWriter csv({"datapath", "quantization", "freq_mhz", "min_fps", "dsps",
                   "brams", "bw_gbps", "efficiency", "fitness", "feasible",
                   "pareto"});
    for (const dse::SweepPoint& p : points) {
      const arch::AcceleratorEval& eval = p.result.eval;
      csv.add_row({p.datapath, nn::to_string(p.quantization),
                   format_fixed(p.freq_mhz, 0),
                   format_fixed(eval.min_fps, 3), std::to_string(eval.dsps),
                   std::to_string(eval.brams), format_fixed(eval.bw_gbps, 3),
                   format_fixed(eval.efficiency, 4),
                   format_fixed(p.result.fitness, 3),
                   std::to_string(p.result.feasible ? 1 : 0),
                   std::to_string(p.pareto_optimal ? 1 : 0)});
    }
    if (!csv.write_file(csv_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", csv_path.c_str());
      return 1;
    }
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  if (!json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.key("schema_version").value(1);
    json.key("bench").value("sweep");
    json.key("strategy").value(spec.strategy);
    json.key("points").begin_array();
    for (const dse::SweepPoint& p : points) {
      const arch::AcceleratorEval& eval = p.result.eval;
      json.begin_object();
      json.key("datapath").value(p.datapath);
      json.key("quantization").value(nn::to_string(p.quantization));
      json.key("freq_mhz").value(p.freq_mhz);
      json.key("min_fps").value(eval.min_fps);
      json.key("dsps").value(eval.dsps);
      json.key("brams").value(eval.brams);
      json.key("bw_gbps").value(eval.bw_gbps);
      json.key("efficiency").value(eval.efficiency);
      json.key("fitness").value(p.result.fitness);
      json.key("feasible").value(p.result.feasible);
      json.key("pareto").value(p.pareto_optimal);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    std::printf("json written to %s\n", json_path.c_str());
  }
  return obs_scope.finish() ? 0 : 1;
}
