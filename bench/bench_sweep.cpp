// Quantization x frequency co-exploration (our extension): the paper fixes
// 200 MHz and treats quantization Q as a per-run customization; this bench
// explores the grid on ZU9CG and prints the (min-FPS, DSP) Pareto frontier,
// the deployment view an HMD architect actually needs.
#include <cstdio>

#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "dse/search_driver.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "util/args.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fcad;

  auto args = ArgParser::parse(argc, argv);
  if (!args.is_ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().to_string().c_str());
    return 1;
  }

  std::printf(
      "=== quantization x frequency sweep, ZU9CG, batch {1,2,2} ===\n\n");
  auto model = arch::reorganize(nn::zoo::avatar_decoder());
  FCAD_CHECK_MSG(model.is_ok(), model.status().message());

  dse::SearchSpec spec;
  spec.kind = dse::SearchKind::kSweep;
  spec.sweep.frequencies_mhz = {150, 200, 250, 300};
  spec.search.population = 100;
  spec.search.iterations = 12;
  spec.search.seed = 4242;
  auto threads_flag = args->get_int("threads", 0);
  if (!threads_flag.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 threads_flag.status().to_string().c_str());
    return 1;
  }
  spec.control.threads = static_cast<int>(*threads_flag);
  spec.customization.batch_sizes = {1, 2, 2};

  auto outcome = dse::SearchDriver(*model, arch::platform_zu9cg()).run(spec);
  FCAD_CHECK_MSG(outcome.is_ok(), outcome.status().message());
  const std::vector<dse::SweepPoint>& points = outcome->sweep;

  TablePrinter t({"Q", "clock", "min FPS", "DSP", "BRAM", "BW (GB/s)",
                  "efficiency", "Pareto"});
  for (const dse::SweepPoint& p : points) {
    const arch::AcceleratorEval& eval = p.result.eval;
    t.add_row({nn::to_string(p.quantization),
               format_fixed(p.freq_mhz, 0) + " MHz",
               format_fixed(eval.min_fps, 1), std::to_string(eval.dsps),
               std::to_string(eval.brams), format_fixed(eval.bw_gbps, 2),
               format_percent(eval.efficiency, 1),
               p.pareto_optimal ? "*" : ""});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "shape to check: int8 dominates int16 at equal clock (DSP packing);\n"
      "FPS scales with clock until DDR bandwidth bites; the frontier should\n"
      "be int8 points ordered by clock.\n");
  return 0;
}
