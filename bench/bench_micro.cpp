// Micro-benchmarks (google-benchmark) of the framework's hot paths: the
// analytical evaluator, the in-branch greedy search, one full cross-branch
// candidate evaluation, and the cycle-level simulator. These are what bound
// the DSE's wall-clock (Sec. VII reports minutes-scale searches).
#include <benchmark/benchmark.h>

#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "dse/cross_branch.hpp"
#include "dse/in_branch.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace fcad;

const arch::ReorganizedModel& decoder_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK_MSG(m.is_ok(), m.status().message());
    return std::move(m).value();
  }();
  return model;
}

const arch::AcceleratorConfig& sample_config() {
  static const arch::AcceleratorConfig config = [] {
    const arch::ReorganizedModel& model = decoder_model();
    dse::Customization cust;
    cust.quantization = nn::DataType::kInt8;
    cust.batch_sizes = {1, 2, 2};
    cust.priorities = {1, 1, 1};
    dse::CrossBranchOptions options;
    options.population = 30;
    options.iterations = 5;
    options.seed = 3;
    const auto result = dse::cross_branch_search(
        model, dse::ResourceBudget::from_platform(arch::platform_zu9cg()),
        cust, options);
    return result.config;
  }();
  return config;
}

void BM_AnalyticalEvaluate(benchmark::State& state) {
  const auto& model = decoder_model();
  const auto& config = sample_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        arch::evaluate(model, config, arch::EvalMode::kAnalytical));
  }
}
BENCHMARK(BM_AnalyticalEvaluate);

void BM_InBranchOptimize(benchmark::State& state) {
  const auto& model = decoder_model();
  const dse::ResourceBudget slice{1200, 900, 6.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dse::in_branch_optimize(
        model, /*branch=*/1, slice, /*batch_target=*/2, nn::DataType::kInt8,
        nn::DataType::kInt8, /*freq_mhz=*/200));
  }
}
BENCHMARK(BM_InBranchOptimize);

void BM_CrossBranchIteration(benchmark::State& state) {
  const auto& model = decoder_model();
  dse::Customization cust;
  cust.quantization = nn::DataType::kInt8;
  cust.batch_sizes = {1, 2, 2};
  cust.priorities = {1, 1, 1};
  dse::CrossBranchOptions options;
  options.population = static_cast<int>(state.range(0));
  options.iterations = 1;
  for (auto _ : state) {
    options.seed += 1;  // fresh swarm per run
    benchmark::DoNotOptimize(dse::cross_branch_search(
        model, dse::ResourceBudget::from_platform(arch::platform_zu9cg()),
        cust, options));
  }
}
BENCHMARK(BM_CrossBranchIteration)->Arg(10)->Arg(50)->Arg(200);

void BM_CycleSimulator(benchmark::State& state) {
  const auto& model = decoder_model();
  const auto& config = sample_config();
  const arch::Platform zu9cg = arch::platform_zu9cg();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(model, config, zu9cg));
  }
}
BENCHMARK(BM_CycleSimulator);

}  // namespace

BENCHMARK_MAIN();
