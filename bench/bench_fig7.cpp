// Fig. 7 — efficiency estimation error of the analytical model against the
// cycle-level "board" for the eight calibration benchmarks on KU115.
#include <cstdio>

#include "core/calibration.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace fcad;

  std::printf(
      "=== Fig. 7: efficiency estimation error (8 benchmarks, KU115) ===\n\n");
  const auto points = core::run_calibration();

  TablePrinter t({"Benchmark", "Estimated eff.", "Real eff. (sim)",
                  "Normalized est.", "Error"});
  double max_err = 0;
  double sum_err = 0;
  for (const auto& p : points) {
    t.add_row({p.name, format_percent(p.est_eff, 2),
               format_percent(p.real_eff, 2),
               format_fixed(p.real_eff > 0 ? p.est_eff / p.real_eff : 0, 4),
               format_percent(p.eff_error(), 2)});
    max_err = std::max(max_err, p.eff_error());
    sum_err += p.eff_error();
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("max error %s, average error %s\n",
              format_percent(max_err, 2).c_str(),
              format_percent(sum_err / points.size(), 2).c_str());
  std::printf("paper reference: 3.96%% max, 1.91%% average.\n");
  return 0;
}
