// Fig. 3 — latency of the last five Conv layers of Br.2 under DNNBuilder as
// the FPGA budget grows (schemes 1-3). Layers that reached DNNBuilder's
// maximum parallel factor (InCh x OutCh) are marked: their latency cannot
// shrink, which is why DNNBuilder's throughput plateaus.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "baselines/dnnbuilder.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace fcad;

  std::printf("=== Fig. 3: last five Br.2 Conv latencies, DNNBuilder ===\n\n");
  nn::Graph mimic = nn::zoo::mimic_decoder();
  auto model = arch::reorganize(mimic);
  if (!model.is_ok()) {
    std::fprintf(stderr, "%s\n", model.status().to_string().c_str());
    return 1;
  }

  // Br.2 is the texture branch (index 1); take its last five stages.
  const arch::BranchPipeline& br2 = model->branches[1];
  FCAD_CHECK(br2.stages.size() >= 5);
  std::vector<int> last5(br2.stages.end() - 5, br2.stages.end());

  const std::vector<arch::Platform> schemes = {
      arch::platform_z7045(), arch::platform_zu17eg(), arch::platform_zu9cg()};

  // Layer latency per scheme.
  std::map<int, std::vector<std::string>> rows;
  std::vector<std::string> fps_row;
  for (const arch::Platform& p : schemes) {
    const baselines::DnnBuilderResult r =
        baselines::run_dnnbuilder(*model, p, nn::DataType::kInt8);
    for (int s : last5) {
      const baselines::DnnBuilderLayer& layer =
          r.layers[static_cast<std::size_t>(s)];
      std::string cell = format_fixed(layer.latency_ms, 2) + " ms";
      if (layer.capped) cell += " *";
      rows[s].push_back(cell);
    }
    fps_row.push_back(format_fixed(r.fps, 1) + " FPS");
  }

  TablePrinter t({"Br.2 layer", "Scheme 1 (Z7045)", "Scheme 2 (ZU17EG)",
                  "Scheme 3 (ZU9CG)"});
  for (int s : last5) {
    const arch::FusedStage& st = model->stage(s);
    std::vector<std::string> row = {st.name + " (" + std::to_string(st.in_ch) +
                                    "->" + std::to_string(st.out_ch) + " @" +
                                    std::to_string(st.out_h) + ")"};
    row.insert(row.end(), rows[s].begin(), rows[s].end());
    t.add_row(row);
  }
  std::vector<std::string> frow = {"whole-decoder throughput"};
  frow.insert(frow.end(), fps_row.begin(), fps_row.end());
  t.add_separator();
  t.add_row(frow);
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "* = layer at DNNBuilder's maximum parallel factor (InCh x OutCh); its\n"
      "latency no longer improves with more resources — the circled layers\n"
      "of the paper's Fig. 3. Shape to check: capped layers flat across\n"
      "schemes while uncapped layers shrink, so FPS stays put.\n");
  return 0;
}
