// Shared harness for Figs. 6-7: configure each calibration backbone
// (AlexNet, ZFNet, VGG16, Tiny-YOLO; 16-bit = benchmarks 1-4, 8-bit = 5-8)
// on the KU115 with the F-CAD flow, then compare the analytical estimate
// (Eqs. 3-5) against the cycle-level simulator standing in for the paper's
// board-level implementation.
#pragma once

#include <string>
#include <vector>

#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "dse/engine.hpp"
#include "nn/zoo/classic_nets.hpp"
#include "sim/simulator.hpp"

namespace fcad::benchharness {

struct CalibrationPoint {
  std::string name;       ///< "1: AlexNet (16-bit)" ...
  double est_fps = 0;     ///< analytical estimate
  double real_fps = 0;    ///< simulated ("board") value
  double est_eff = 0;
  double real_eff = 0;

  double fps_error() const {
    return real_fps > 0 ? std::abs(est_fps - real_fps) / real_fps : 0.0;
  }
  double eff_error() const {
    return real_eff > 0 ? std::abs(est_eff - real_eff) / real_eff : 0.0;
  }
};

inline std::vector<CalibrationPoint> run_calibration() {
  std::vector<CalibrationPoint> points;
  const arch::Platform ku115 = arch::platform_ku115();
  const nn::DataType dtypes[] = {nn::DataType::kInt16, nn::DataType::kInt8};

  int index = 1;
  for (nn::DataType dtype : dtypes) {
    for (nn::Graph& net : nn::zoo::calibration_benchmarks()) {
      auto model = arch::reorganize(net);
      FCAD_CHECK_MSG(model.is_ok(), model.status().message());

      dse::DseRequest request;
      request.platform = ku115;
      request.customization.quantization = dtype;
      request.options.population = 40;  // single branch: small swarm suffices
      request.options.iterations = 8;
      request.options.seed = 1234 + index;
      auto search = dse::optimize(*model, request);
      FCAD_CHECK_MSG(search.is_ok(), search.status().message());

      const sim::SimResult simulated =
          sim::simulate(*model, search->config, ku115);

      CalibrationPoint p;
      p.name = std::to_string(index) + ": " + net.name() + " (" +
               nn::to_string(dtype) + ")";
      // Analytical estimate: smooth Eq. 4/5 + Eq. 3 on the winning config.
      const arch::AcceleratorEval analytical = arch::evaluate(
          *model, search->config, arch::EvalMode::kAnalytical);
      p.est_fps = analytical.min_fps;
      p.est_eff = analytical.efficiency;
      p.real_fps = simulated.min_fps;
      p.real_eff = simulated.efficiency;
      points.push_back(p);
      ++index;
    }
  }
  return points;
}

}  // namespace fcad::benchharness
