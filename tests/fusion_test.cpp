#include <gtest/gtest.h>

#include "arch/fusion.hpp"
#include "arch/unit.hpp"
#include "nn/builder.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "nn/zoo/classic_nets.hpp"

namespace fcad::arch {
namespace {

using nn::GraphBuilder;

StatusOr<FusedGraph> fuse_graph(const nn::Graph& g) {
  return fuse(g, analysis::profile_graph(g));
}

TEST(FusionTest, CauBlockFusesIntoOneStage) {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto c = b.conv2d(in, "c", {.out_ch = 8, .kernel = 4, .untied_bias = true});
  auto a = b.leaky_relu(c, "a");
  auto u = b.upsample2x(a, "u");
  b.output(u, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  auto fg = fuse_graph(*g);
  ASSERT_TRUE(fg.is_ok());
  ASSERT_EQ(fg->stages.size(), 1u);
  const FusedStage& st = fg->stages[0];
  EXPECT_TRUE(st.has_activation);
  EXPECT_TRUE(st.has_upsample);
  EXPECT_TRUE(st.untied_bias);
  EXPECT_EQ(st.out_h, 8);      // conv resolution
  EXPECT_EQ(st.final_h, 16);   // after the folded upsample
  EXPECT_EQ(st.source_layers.size(), 3u);
}

TEST(FusionTest, StageDemandAggregatesFoldedOps) {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto c = b.conv2d(in, "c", {.out_ch = 8, .kernel = 3});
  auto a = b.relu(c, "a");
  b.output(a, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  const auto profile = analysis::profile_graph(*g);
  auto fg = fuse(*g, profile);
  ASSERT_TRUE(fg.is_ok());
  EXPECT_EQ(fg->stages[0].ops, profile.total_ops);
  EXPECT_EQ(fg->stages[0].macs, profile.total_macs);
}

TEST(FusionTest, AvatarDecoderStageCount) {
  // Br.1: 6 convs; shared+Br.2: 8; Br.3 own: 4 -> 18 pipeline stages.
  auto fg = fuse_graph(nn::zoo::avatar_decoder());
  ASSERT_TRUE(fg.is_ok());
  EXPECT_EQ(fg->stages.size(), 18u);
  ASSERT_EQ(fg->output_stages.size(), 3u);
}

TEST(FusionTest, ReshapeAndConcatDissolveIntoEdges) {
  auto fg = fuse_graph(nn::zoo::avatar_decoder());
  ASSERT_TRUE(fg.is_ok());
  // The concat of latent+view feeds the first shared conv: that stage has no
  // producing stage (network input) and in_ch 7.
  bool found = false;
  for (std::size_t s = 0; s < fg->stages.size(); ++s) {
    if (fg->stages[s].name == "sh_l1_conv") {
      found = true;
      EXPECT_TRUE(fg->stage_inputs[s].empty());
      EXPECT_EQ(fg->stages[s].in_ch, 7);
    }
  }
  EXPECT_TRUE(found);
}

TEST(FusionTest, SharedStageFansOutToTwoConsumers) {
  auto fg = fuse_graph(nn::zoo::avatar_decoder());
  ASSERT_TRUE(fg.is_ok());
  for (std::size_t s = 0; s < fg->stages.size(); ++s) {
    if (fg->stages[s].name == "sh_l2_conv") {
      EXPECT_EQ(fg->consumers(static_cast<int>(s)).size(), 2u);
    }
  }
}

TEST(FusionTest, DenseAndPoolNetworksFuse) {
  auto fg = fuse_graph(nn::zoo::alexnet());
  ASSERT_TRUE(fg.is_ok());
  // 5 convs + 3 fc = 8 stages; pools and relus folded.
  EXPECT_EQ(fg->stages.size(), 8u);
  int dense_stages = 0;
  int pooled_stages = 0;
  for (const FusedStage& st : fg->stages) {
    dense_stages += st.kind == FusedStage::Kind::kDense;
    pooled_stages += st.has_pool;
  }
  EXPECT_EQ(dense_stages, 3);
  EXPECT_EQ(pooled_stages, 3);
}

TEST(FusionTest, DenseStageGeometry) {
  auto fg = fuse_graph(nn::zoo::alexnet());
  ASSERT_TRUE(fg.is_ok());
  const FusedStage& fc6 = fg->stages[5];
  EXPECT_EQ(fc6.kind, FusedStage::Kind::kDense);
  EXPECT_EQ(fc6.out_h, 1);
  EXPECT_EQ(fc6.kernel, 1);
  EXPECT_EQ(fc6.out_ch, 4096);
}

TEST(FusionTest, PostOpOnNetworkInputRejected) {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto a = b.relu(in, "a");  // nothing to fold into
  b.output(a, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  auto fg = fuse_graph(*g);
  ASSERT_FALSE(fg.is_ok());
  EXPECT_EQ(fg.status().code(), StatusCode::kInvalidArgument);
}

TEST(FusionTest, FanOutBeforePostOpRejected) {
  // The conv's raw output feeds both an activation and another conv; the
  // activation cannot be folded without changing the second consumer.
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto c = b.conv2d(in, "c", {.out_ch = 8, .kernel = 3});
  auto a = b.relu(c, "a");
  auto c2 = b.conv2d(c, "c2", {.out_ch = 8, .kernel = 3});
  b.output(a, "y1");
  b.output(c2, "y2");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  auto fg = fuse_graph(*g);
  ASSERT_FALSE(fg.is_ok());
  EXPECT_NE(fg.status().message().find("fans out"), std::string::npos);
}

TEST(FusionTest, MaxParallelismBounds) {
  auto fg = fuse_graph(nn::zoo::avatar_decoder());
  ASSERT_TRUE(fg.is_ok());
  for (const FusedStage& st : fg->stages) {
    EXPECT_EQ(st.max_cpf(), st.in_ch);
    EXPECT_EQ(st.max_kpf(), st.out_ch);
    EXPECT_EQ(st.max_h(), st.out_h);
    EXPECT_GT(max_lanes(st), 0);
  }
}

}  // namespace
}  // namespace fcad::arch
