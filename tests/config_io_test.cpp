#include <gtest/gtest.h>

#include "arch/config_io.hpp"
#include "dse/cross_branch.hpp"
#include "arch/platform.hpp"
#include "nn/zoo/avatar_decoder.hpp"

namespace fcad::arch {
namespace {

struct Fixture {
  ReorganizedModel model;
  AcceleratorConfig config;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    auto model = reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(model.is_ok());
    dse::Customization cust;
    cust.batch_sizes = {1, 2, 2};
    cust.priorities = {1, 1, 1};
    dse::CrossBranchOptions opt;
    opt.population = 20;
    opt.iterations = 4;
    const auto search = dse::cross_branch_search(
        *model, dse::ResourceBudget::from_platform(platform_zu9cg()), cust,
        opt);
    return Fixture{std::move(model).value(), search.config};
  }();
  return f;
}

TEST(ConfigIoTest, RoundTrip) {
  const std::string text = config_to_text(fixture().model, fixture().config);
  auto parsed = config_from_text(fixture().model, text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->datapath, fixture().config.datapath);
  EXPECT_EQ(parsed->freq_mhz, fixture().config.freq_mhz);
  ASSERT_EQ(parsed->branches.size(), fixture().config.branches.size());
  for (std::size_t b = 0; b < parsed->branches.size(); ++b) {
    EXPECT_EQ(parsed->branches[b].batch, fixture().config.branches[b].batch);
    EXPECT_EQ(parsed->branches[b].units, fixture().config.branches[b].units);
  }
}

TEST(ConfigIoTest, RoundTripEvaluatesIdentically) {
  const std::string text = config_to_text(fixture().model, fixture().config);
  auto parsed = config_from_text(fixture().model, text);
  ASSERT_TRUE(parsed.is_ok());
  const auto a =
      evaluate(fixture().model, fixture().config, EvalMode::kQuantized);
  const auto b = evaluate(fixture().model, *parsed, EvalMode::kQuantized);
  EXPECT_EQ(a.dsps, b.dsps);
  EXPECT_EQ(a.brams, b.brams);
  EXPECT_DOUBLE_EQ(a.min_fps, b.min_fps);
}

TEST(ConfigIoTest, MissingHeaderRejected) {
  auto parsed = config_from_text(fixture().model, "branch 0 batch=1\n");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("header"), std::string::npos);
}

TEST(ConfigIoTest, UnknownStageRejected) {
  const std::string text =
      "accelerator dw=int8 ww=int8 freq_mhz=200\n"
      "branch 0 batch=1\n"
      "unit nonexistent_conv cpf=1 kpf=1 h=1\n";
  auto parsed = config_from_text(fixture().model, text);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("unknown stage"),
            std::string::npos);
}

TEST(ConfigIoTest, WrongBranchRejected) {
  // br1_l1_conv belongs to branch 0, not branch 1.
  const std::string text =
      "accelerator dw=int8 ww=int8 freq_mhz=200\n"
      "branch 1 batch=1\n"
      "unit br1_l1_conv cpf=1 kpf=1 h=1\n";
  auto parsed = config_from_text(fixture().model, text);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("belongs to branch"),
            std::string::npos);
}

TEST(ConfigIoTest, OversizedFactorsRejected) {
  std::string text = config_to_text(fixture().model, fixture().config);
  // Corrupt the first unit line with an impossible cpf.
  const std::size_t pos = text.find("cpf=");
  text.replace(pos, text.find(' ', pos) - pos, "cpf=99999");
  auto parsed = config_from_text(fixture().model, text);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("do not fit"), std::string::npos);
}

TEST(ConfigIoTest, MissingUnitRejected) {
  std::string text = config_to_text(fixture().model, fixture().config);
  // Drop the last unit line.
  const std::size_t last_unit = text.rfind("unit ");
  text.erase(last_unit);
  auto parsed = config_from_text(fixture().model, text);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("missing unit"), std::string::npos);
}

TEST(ConfigIoTest, BadDtypeRejected) {
  auto parsed = config_from_text(
      fixture().model, "accelerator dw=fp32 ww=int8 freq_mhz=200\n");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("unknown dtype"),
            std::string::npos);
}

TEST(ConfigIoTest, BadDatapathRejected) {
  auto parsed = config_from_text(
      fixture().model, "accelerator datapath=warped-int8 freq_mhz=200\n");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("unknown datapath"),
            std::string::npos);
}

TEST(ConfigIoTest, DeprecatedDwWwKeysStillParse) {
  // One-release back-compat: the pre-datapath "dw=/ww=" keys must keep
  // loading as a pipelined datapath at those widths.
  std::string text = config_to_text(fixture().model, fixture().config);
  const std::size_t eol = text.find('\n');
  ASSERT_NE(eol, std::string::npos);
  text.replace(0, eol, "accelerator dw=int16 ww=int16 freq_mhz=200");
  auto parsed = config_from_text(fixture().model, text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->datapath,
            datapath_from_quantization(nn::DataType::kInt16));
}

TEST(ConfigIoTest, HeaderCarriesCanonicalDatapathName) {
  const std::string text = config_to_text(fixture().model, fixture().config);
  EXPECT_NE(text.find("accelerator datapath=pipelined-int8"),
            std::string::npos)
      << text;
}

TEST(ConfigIoTest, CommentsIgnored) {
  std::string text = config_to_text(fixture().model, fixture().config);
  text.insert(0, "# saved by test\n");
  EXPECT_TRUE(config_from_text(fixture().model, text).is_ok());
}

}  // namespace
}  // namespace fcad::arch
