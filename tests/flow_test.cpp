#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "nn/builder.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "nn/zoo/classic_nets.hpp"

namespace fcad::core {
namespace {

FlowOptions fast_options() {
  FlowOptions options;
  options.customization.quantization = nn::DataType::kInt8;
  options.customization.batch_sizes = {1, 2, 2};
  options.search.population = 30;
  options.search.iterations = 5;
  options.search.seed = 11;
  return options;
}

TEST(FlowTest, EndToEndOnDecoder) {
  Flow flow(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = flow.run(fast_options());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->decomposition.branches.size(), 3u);
  EXPECT_EQ(result->model.num_branches(), 3);
  EXPECT_TRUE(result->search.feasible);
  EXPECT_GT(result->search.eval.min_fps, 10.0);
  EXPECT_FALSE(result->simulation.has_value());
}

TEST(FlowTest, SimulationOnRequest) {
  FlowOptions options = fast_options();
  options.run_simulation = true;
  Flow flow(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = flow.run(options);
  ASSERT_TRUE(result.is_ok());
  ASSERT_TRUE(result->simulation.has_value());
  // Simulated throughput within 10% of the analytical estimate.
  EXPECT_NEAR(result->simulation->min_fps, result->search.eval.min_fps,
              0.1 * result->search.eval.min_fps);
}

TEST(FlowTest, SingleBranchBackbone) {
  FlowOptions options;
  options.search.population = 20;
  options.search.iterations = 4;
  Flow flow(nn::zoo::alexnet(), arch::platform_ku115());
  auto result = flow.run(options);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->model.num_branches(), 1);
  EXPECT_GT(result->search.eval.min_fps, 0);
}

TEST(FlowTest, BadCustomizationFails) {
  FlowOptions options = fast_options();
  options.customization.batch_sizes = {1};  // decoder has 3 branches
  Flow flow(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = flow.run(options);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlowTest, UnmappableGraphFails) {
  nn::GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto a = b.relu(in, "a");  // post-op with no major layer
  b.output(a, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  Flow flow(std::move(g).value(), arch::platform_zu9cg());
  FlowOptions options;
  auto result = flow.run(options);
  EXPECT_FALSE(result.is_ok());
}

TEST(ReportTest, CaseReportContainsKeyRows) {
  FlowOptions options = fast_options();
  options.run_simulation = true;
  Flow flow(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = flow.run(options);
  ASSERT_TRUE(result.is_ok());
  const std::string report =
      case_report("test case", *result, flow.platform());
  EXPECT_NE(report.find("test case"), std::string::npos);
  EXPECT_NE(report.find("ZU9CG"), std::string::npos);
  EXPECT_NE(report.find("geometry"), std::string::npos);
  EXPECT_NE(report.find("texture"), std::string::npos);
  EXPECT_NE(report.find("warp_field"), std::string::npos);
  EXPECT_NE(report.find("totals:"), std::string::npos);
  EXPECT_NE(report.find("simulator check"), std::string::npos);
}

TEST(ReportTest, SummaryLineFormat) {
  Flow flow(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = flow.run(fast_options());
  ASSERT_TRUE(result.is_ok());
  const std::string line = summary_line(*result, flow.platform());
  EXPECT_NE(line.find("FPS {"), std::string::npos);
  EXPECT_NE(line.find("DSP "), std::string::npos);
  EXPECT_NE(line.find("/2520"), std::string::npos);
}

TEST(PlatformTest, CatalogMatchesPaperBudgets) {
  EXPECT_EQ(arch::platform_z7045().dsps, 900);
  EXPECT_EQ(arch::platform_z7045().brams18k, 1090);
  EXPECT_EQ(arch::platform_zu17eg().dsps, 1590);
  EXPECT_EQ(arch::platform_zu17eg().brams18k, 1592);
  EXPECT_EQ(arch::platform_zu9cg().dsps, 2520);
  EXPECT_EQ(arch::platform_zu9cg().brams18k, 1824);
  EXPECT_EQ(arch::platform_ku115().dsps, 5520);
  for (const auto& p : arch::all_platforms()) {
    EXPECT_DOUBLE_EQ(p.freq_mhz, 200.0) << p.name;
  }
}

TEST(PlatformTest, LookupByNameCaseInsensitive) {
  auto p = arch::platform_by_name("zu9cg");
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p->name, "ZU9CG");
  EXPECT_FALSE(arch::platform_by_name("nonexistent").is_ok());
}

TEST(PlatformTest, AsicBudget) {
  const arch::Platform asic =
      arch::make_asic("edge-npu", 4096, /*buffer_mib=*/4.0, /*bw=*/25.6,
                      /*freq=*/800.0);
  EXPECT_TRUE(asic.is_asic);
  EXPECT_EQ(asic.dsps, 4096);
  // 4 MiB in 18-Kbit blocks: 4*1024*1024*8 / 18432 = 1821 (ceil).
  EXPECT_EQ(asic.brams18k, 1821);
  EXPECT_GT(asic.bw_bytes_per_cycle(), 0);
}

}  // namespace
}  // namespace fcad::core
