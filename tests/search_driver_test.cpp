// SearchDriver run-control plumbing (progress observers, cooperative
// cancellation, deadlines, thread overrides) and the deprecated engine
// shims, which must keep forwarding to the driver unchanged for one
// release.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "arch/platform.hpp"
#include "dse/engine.hpp"
#include "dse/search_driver.hpp"
#include "dse/sweep.hpp"
#include "nn/zoo/avatar_decoder.hpp"

namespace fcad::dse {
namespace {

const arch::ReorganizedModel& decoder_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(m.is_ok());
    return std::move(m).value();
  }();
  return model;
}

SearchSpec fast_spec() {
  SearchSpec spec;
  spec.customization.batch_sizes = {1, 2, 2};
  spec.search.population = 20;
  spec.search.iterations = 5;
  spec.search.seed = 31;
  return spec;
}

// ------------------------------------------------------------ run control --

TEST(RunControlTest, ProgressEventsArriveOncePerIteration) {
  SearchSpec spec = fast_spec();
  std::vector<ProgressEvent> events;
  spec.control.on_progress = [&](const ProgressEvent& event) {
    events.push_back(event);
  };
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].stage, "search");
    EXPECT_EQ(events[static_cast<std::size_t>(i)].step, i + 1);
    EXPECT_EQ(events[static_cast<std::size_t>(i)].total_steps, 5);
  }
  // The best-fitness stream is monotonically non-decreasing.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].best_fitness, events[i - 1].best_fitness);
  }
}

TEST(RunControlTest, CancellationStopsALongSearchPromptly) {
  SearchSpec spec = fast_spec();
  spec.search.iterations = 1000;  // would take minutes if not cancelled
  std::atomic<int> seen{0};
  spec.control.on_progress = [&](const ProgressEvent&) {
    if (++seen >= 2) spec.control.cancel.request_cancel();
  };
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_TRUE(outcome->cancelled);
  EXPECT_TRUE(outcome->search.stopped_early);
  // Stopped right after the cancelling iteration, with the best-so-far
  // result intact.
  EXPECT_EQ(outcome->search.trace.best_fitness.size(), 2u);
  EXPECT_FALSE(outcome->search.config.branches.empty());
}

TEST(RunControlTest, CancelledBeforeStartProducesEmptyBestEffort) {
  SearchSpec spec = fast_spec();
  spec.control.cancel.request_cancel();
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_TRUE(outcome->cancelled);
  EXPECT_TRUE(outcome->search.trace.best_fitness.empty());
}

TEST(RunControlTest, DeadlineBoundsTheRun) {
  SearchSpec spec = fast_spec();
  spec.search.iterations = 1000;
  spec.control.deadline_s = 1e-9;  // expires before the first iteration
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_TRUE(outcome->cancelled);
  EXPECT_LT(outcome->search.trace.best_fitness.size(), 1000u);
}

TEST(RunControlTest, ThreadOverrideKeepsResultsIdentical) {
  SearchSpec spec = fast_spec();
  const SearchDriver driver(decoder_model(), arch::platform_zu9cg());
  auto baseline = driver.run(spec);
  ASSERT_TRUE(baseline.is_ok());
  spec.control.threads = 2;
  auto threaded = driver.run(spec);
  ASSERT_TRUE(threaded.is_ok());
  EXPECT_EQ(baseline->search.fitness, threaded->search.fitness);
  EXPECT_EQ(baseline->search.trace.best_fitness,
            threaded->search.trace.best_fitness);
}

TEST(RunControlTest, CancellationReachesTrafficCandidates) {
  SearchSpec spec;
  spec.kind = SearchKind::kTraffic;
  spec.search.population = 20;
  spec.search.iterations = 200;
  spec.search.seed = 42;
  spec.traffic.workload.users = 2;
  spec.traffic.workload.duration_s = 0.25;
  spec.traffic.max_batch = 4;
  spec.control.cancel.request_cancel();  // cancelled from the very start
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_TRUE(outcome->cancelled);
}

// -------------------------------------------------------- deprecated shims --
// The shims must forward bit-identically to hand-built SearchSpecs for one
// release. They are deliberately exercised here; silence the warning locally.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

DseRequest legacy_request() {
  DseRequest request;
  request.platform = arch::platform_zu9cg();
  request.customization.batch_sizes = {1, 2, 2};
  request.options.population = 20;
  request.options.iterations = 5;
  request.options.seed = 31;
  return request;
}

TEST(DeprecatedShimTest, OptimizeForwardsToDriver) {
  auto via_shim = optimize(decoder_model(), legacy_request());
  ASSERT_TRUE(via_shim.is_ok());
  auto via_driver =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(fast_spec());
  ASSERT_TRUE(via_driver.is_ok());
  EXPECT_EQ(via_shim->fitness, via_driver->search.fitness);
  EXPECT_EQ(via_shim->feasible, via_driver->search.feasible);
  EXPECT_EQ(via_shim->trace.best_fitness,
            via_driver->search.trace.best_fitness);
}

TEST(DeprecatedShimTest, ConvergenceStudyForwardsToDriver) {
  const ConvergenceStats via_shim =
      convergence_study(decoder_model(), legacy_request(), 3);
  SearchSpec spec = fast_spec();
  spec.kind = SearchKind::kConvergence;
  spec.convergence_runs = 3;
  auto via_driver =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(via_driver.is_ok());
  EXPECT_EQ(via_shim.mean_fitness, via_driver->convergence.mean_fitness);
  EXPECT_EQ(via_shim.mean_iterations,
            via_driver->convergence.mean_iterations);
  EXPECT_EQ(via_shim.fitness_spread, via_driver->convergence.fitness_spread);
}

TEST(DeprecatedShimTest, MaxFeasibleBatchForwardsToDriver) {
  auto via_shim = max_feasible_batch(decoder_model(), legacy_request(), 0, 4);
  ASSERT_TRUE(via_shim.is_ok());
  SearchSpec spec = fast_spec();
  spec.kind = SearchKind::kMaxBatch;
  spec.batch_branch = 0;
  spec.batch_probe_limit = 4;
  auto via_driver =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(via_driver.is_ok());
  EXPECT_EQ(*via_shim, via_driver->max_batch);
}

TEST(DeprecatedShimTest, SweepForwardsToDriver) {
  SweepOptions options;
  options.quantizations = {nn::DataType::kInt8};
  options.frequencies_mhz = {200};
  options.search = legacy_request().options;
  options.customization.batch_sizes = {1, 2, 2};
  auto via_shim = quantization_frequency_sweep(
      decoder_model(), arch::platform_zu9cg(), options);
  ASSERT_TRUE(via_shim.is_ok());

  SearchSpec spec = fast_spec();
  spec.kind = SearchKind::kSweep;
  spec.sweep.quantizations = {nn::DataType::kInt8};
  spec.sweep.frequencies_mhz = {200};
  auto via_driver =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(via_driver.is_ok());
  ASSERT_EQ(via_shim->size(), via_driver->sweep.size());
  EXPECT_EQ((*via_shim)[0].result.fitness,
            via_driver->sweep[0].result.fitness);
  EXPECT_EQ((*via_shim)[0].pareto_optimal,
            via_driver->sweep[0].pareto_optimal);
}

TEST(DeprecatedShimTest, TrafficForwardsAndPreservesOverwriteSemantics) {
  DseRequest request = legacy_request();
  request.customization.batch_sizes.clear();
  TrafficProfile profile;
  profile.workload.users = 2;
  profile.workload.duration_s = 0.25;
  profile.workload.seed = 42;
  // The legacy footguns: both fields were silently overwritten before; the
  // shim must keep accepting (and discarding) them rather than erroring.
  profile.workload.branches = 99;
  profile.sla.p99_bound_us = 1.0;
  profile.fleet.instances = 2;
  profile.max_batch = 2;
  auto via_shim = optimize_for_traffic(decoder_model(), request, profile);
  ASSERT_TRUE(via_shim.is_ok()) << via_shim.status().to_string();

  SearchSpec spec;
  spec.kind = SearchKind::kTraffic;
  spec.search = request.options;
  spec.traffic.workload.users = 2;
  spec.traffic.workload.duration_s = 0.25;
  spec.traffic.workload.seed = 42;
  spec.traffic.fleet.instances = 2;
  spec.traffic.max_batch = 2;
  auto via_driver =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(via_driver.is_ok());
  EXPECT_EQ(via_shim->sla_fitness, via_driver->traffic.sla_fitness);
  EXPECT_EQ(via_shim->users_served, via_driver->traffic.users_served);
  EXPECT_EQ(via_shim->batch_sizes, via_driver->traffic.batch_sizes);
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace fcad::dse
