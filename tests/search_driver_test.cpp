// SearchDriver run-control plumbing (progress observers, cooperative
// cancellation, deadlines, thread overrides) and strategy selection: every
// SearchKind runs under any registered strategy via SearchSpec::strategy.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "arch/platform.hpp"
#include "dse/search_driver.hpp"
#include "nn/zoo/avatar_decoder.hpp"

namespace fcad::dse {
namespace {

const arch::ReorganizedModel& decoder_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(m.is_ok());
    return std::move(m).value();
  }();
  return model;
}

SearchSpec fast_spec() {
  SearchSpec spec;
  spec.customization.batch_sizes = {1, 2, 2};
  spec.search.population = 20;
  spec.search.iterations = 5;
  spec.search.seed = 31;
  return spec;
}

// ------------------------------------------------------------ run control --

TEST(RunControlTest, ProgressEventsArriveOncePerIteration) {
  SearchSpec spec = fast_spec();
  std::vector<ProgressEvent> events;
  spec.control.on_progress = [&](const ProgressEvent& event) {
    events.push_back(event);
  };
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].stage, "search");
    EXPECT_EQ(events[static_cast<std::size_t>(i)].step, i + 1);
    EXPECT_EQ(events[static_cast<std::size_t>(i)].total_steps, 5);
  }
  // The best-fitness stream is monotonically non-decreasing.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].best_fitness, events[i - 1].best_fitness);
  }
}

TEST(RunControlTest, CancellationStopsALongSearchPromptly) {
  SearchSpec spec = fast_spec();
  spec.search.iterations = 1000;  // would take minutes if not cancelled
  std::atomic<int> seen{0};
  spec.control.on_progress = [&](const ProgressEvent&) {
    if (++seen >= 2) spec.control.cancel.request_cancel();
  };
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_TRUE(outcome->cancelled);
  EXPECT_TRUE(outcome->search.stopped_early);
  // Stopped right after the cancelling iteration, with the best-so-far
  // result intact.
  EXPECT_EQ(outcome->search.trace.best_fitness.size(), 2u);
  EXPECT_FALSE(outcome->search.config.branches.empty());
}

TEST(RunControlTest, CancelledBeforeStartProducesEmptyBestEffort) {
  SearchSpec spec = fast_spec();
  spec.control.cancel.request_cancel();
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_TRUE(outcome->cancelled);
  EXPECT_TRUE(outcome->search.trace.best_fitness.empty());
}

TEST(RunControlTest, DeadlineBoundsTheRun) {
  SearchSpec spec = fast_spec();
  spec.search.iterations = 1000;
  spec.control.deadline_s = 1e-9;  // expires before the first iteration
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_TRUE(outcome->cancelled);
  EXPECT_LT(outcome->search.trace.best_fitness.size(), 1000u);
}

TEST(RunControlTest, ThreadOverrideKeepsResultsIdentical) {
  SearchSpec spec = fast_spec();
  const SearchDriver driver(decoder_model(), arch::platform_zu9cg());
  auto baseline = driver.run(spec);
  ASSERT_TRUE(baseline.is_ok());
  spec.control.threads = 2;
  auto threaded = driver.run(spec);
  ASSERT_TRUE(threaded.is_ok());
  EXPECT_EQ(baseline->search.fitness, threaded->search.fitness);
  EXPECT_EQ(baseline->search.trace.best_fitness,
            threaded->search.trace.best_fitness);
}

TEST(RunControlTest, CancellationReachesTrafficCandidates) {
  SearchSpec spec;
  spec.kind = SearchKind::kTraffic;
  spec.search.population = 20;
  spec.search.iterations = 200;
  spec.search.seed = 42;
  spec.traffic.workload.users = 2;
  spec.traffic.workload.duration_s = 0.25;
  spec.traffic.max_batch = 4;
  spec.control.cancel.request_cancel();  // cancelled from the very start
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_TRUE(outcome->cancelled);
}

// ------------------------------------------------------ strategy in spec --
// SearchSpec::strategy must reach the inner searches of every kind. The
// "random" strategy is cheap and clearly distinguishable from the swarm
// (different RNG discipline), so a differing-but-valid outcome under the
// same seed is the signal that the selection took effect.

TEST(StrategyInSpecTest, EveryKindRunsUnderEveryBuiltinStrategy) {
  const SearchDriver driver(decoder_model(), arch::platform_zu9cg());
  for (const char* strategy : {"particle-swarm", "random", "annealing"}) {
    SearchSpec spec = fast_spec();
    spec.strategy = strategy;

    spec.kind = SearchKind::kOptimize;
    auto optimize = driver.run(spec);
    ASSERT_TRUE(optimize.is_ok()) << strategy;
    EXPECT_FALSE(optimize->search.config.branches.empty()) << strategy;

    spec.kind = SearchKind::kMaxBatch;
    spec.batch_branch = 0;
    spec.batch_probe_limit = 2;
    auto max_batch = driver.run(spec);
    ASSERT_TRUE(max_batch.is_ok()) << strategy;
    EXPECT_GE(max_batch->max_batch, 1) << strategy;

    spec.kind = SearchKind::kSweep;
    spec.sweep.quantizations = {nn::DataType::kInt8};
    spec.sweep.frequencies_mhz = {200};
    auto sweep = driver.run(spec);
    ASSERT_TRUE(sweep.is_ok()) << strategy;
    ASSERT_EQ(sweep->sweep.size(), 1u) << strategy;

    spec.kind = SearchKind::kConvergence;
    spec.convergence_runs = 2;
    auto convergence = driver.run(spec);
    ASSERT_TRUE(convergence.is_ok()) << strategy;
    EXPECT_EQ(convergence->convergence.runs, 2) << strategy;

    spec.kind = SearchKind::kTraffic;
    spec.traffic.workload.users = 2;
    spec.traffic.workload.duration_s = 0.25;
    spec.traffic.workload.seed = 42;
    spec.traffic.max_batch = 2;
    auto traffic = driver.run(spec);
    ASSERT_TRUE(traffic.is_ok()) << strategy;
    EXPECT_FALSE(traffic->traffic.batch_sizes.empty()) << strategy;
  }
}

TEST(StrategyInSpecTest, StrategySelectionChangesTheSearch) {
  // Same seed, different strategies: the searches must actually differ
  // (random sampling draws a different candidate sequence than the swarm).
  SearchSpec spec = fast_spec();
  const SearchDriver driver(decoder_model(), arch::platform_zu9cg());
  auto swarm = driver.run(spec);
  ASSERT_TRUE(swarm.is_ok());
  spec.strategy = "random";
  auto random = driver.run(spec);
  ASSERT_TRUE(random.is_ok());
  EXPECT_NE(swarm->search.distribution.c_frac,
            random->search.distribution.c_frac);
}

TEST(StrategyInSpecTest, UnknownStrategyRejectedForEveryKind) {
  const SearchDriver driver(decoder_model(), arch::platform_zu9cg());
  for (SearchKind kind :
       {SearchKind::kOptimize, SearchKind::kMaxBatch, SearchKind::kSweep,
        SearchKind::kConvergence, SearchKind::kTraffic}) {
    SearchSpec spec = fast_spec();
    spec.kind = kind;
    spec.strategy = "no-such-strategy";
    auto outcome = driver.run(spec);
    ASSERT_FALSE(outcome.is_ok()) << to_string(kind);
    EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
  }
}

}  // namespace
}  // namespace fcad::dse
