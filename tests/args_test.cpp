#include <gtest/gtest.h>

#include "util/args.hpp"

namespace fcad {
namespace {

StatusOr<ArgParser> parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return ArgParser::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, EqualsSyntax) {
  auto args = parse({"--platform=zu9cg", "--seed=42"});
  ASSERT_TRUE(args.is_ok());
  EXPECT_EQ(args->get("platform", ""), "zu9cg");
  EXPECT_EQ(*args->get_int("seed", 0), 42);
}

TEST(ArgsTest, SpaceSyntax) {
  auto args = parse({"--platform", "ku115", "--population", "200"});
  ASSERT_TRUE(args.is_ok());
  EXPECT_EQ(args->get("platform", ""), "ku115");
  EXPECT_EQ(*args->get_int("population", 0), 200);
}

TEST(ArgsTest, BareBoolean) {
  auto args = parse({"--simulate", "--quant", "int8"});
  ASSERT_TRUE(args.is_ok());
  EXPECT_TRUE(args->has("simulate"));
  EXPECT_FALSE(args->has("dump-model"));
}

TEST(ArgsTest, BooleanFollowedByFlag) {
  auto args = parse({"--simulate", "--seed", "7"});
  ASSERT_TRUE(args.is_ok());
  EXPECT_EQ(args->get("simulate", ""), "true");
  EXPECT_EQ(*args->get_int("seed", 0), 7);
}

TEST(ArgsTest, Fallbacks) {
  auto args = parse({});
  ASSERT_TRUE(args.is_ok());
  EXPECT_EQ(args->get("missing", "dflt"), "dflt");
  EXPECT_EQ(*args->get_int("missing", 13), 13);
  EXPECT_DOUBLE_EQ(*args->get_double("missing", 2.5), 2.5);
}

TEST(ArgsTest, IntList) {
  auto args = parse({"--batches=1,2,2"});
  ASSERT_TRUE(args.is_ok());
  auto list = args->get_int_list("batches");
  ASSERT_TRUE(list.is_ok());
  EXPECT_EQ(*list, (std::vector<int>{1, 2, 2}));
  // Missing flag: empty list, not an error.
  auto missing = args->get_int_list("priorities");
  ASSERT_TRUE(missing.is_ok());
  EXPECT_TRUE(missing->empty());
}

TEST(ArgsTest, DoubleList) {
  auto args = parse({"--priorities=1,4.5,0.1"});
  ASSERT_TRUE(args.is_ok());
  auto list = args->get_double_list("priorities");
  ASSERT_TRUE(list.is_ok());
  EXPECT_EQ(*list, (std::vector<double>{1.0, 4.5, 0.1}));
}

TEST(ArgsTest, BadIntegerReported) {
  auto args = parse({"--seed=four"});
  ASSERT_TRUE(args.is_ok());
  auto v = args->get_int("seed", 0);
  ASSERT_FALSE(v.is_ok());
  EXPECT_NE(v.status().message().find("seed"), std::string::npos);
}

TEST(ArgsTest, BadListElementReported) {
  auto args = parse({"--batches=1,x,2"});
  ASSERT_TRUE(args.is_ok());
  EXPECT_FALSE(args->get_int_list("batches").is_ok());
}

TEST(ArgsTest, TrailingGarbageRejected) {
  auto args = parse({"--seed=42abc"});
  ASSERT_TRUE(args.is_ok());
  EXPECT_FALSE(args->get_int("seed", 0).is_ok());
}

TEST(ArgsTest, PositionalCollected) {
  auto args = parse({"model.fcad", "--seed=1", "extra"});
  ASSERT_TRUE(args.is_ok());
  EXPECT_EQ(args->positional(),
            (std::vector<std::string>{"model.fcad", "extra"}));
}

TEST(ArgsTest, BareDashDashRejected) {
  auto args = parse({"--"});
  EXPECT_FALSE(args.is_ok());
}

}  // namespace
}  // namespace fcad
