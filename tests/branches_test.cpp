#include <gtest/gtest.h>

#include "analysis/branches.hpp"
#include "nn/builder.hpp"
#include "nn/zoo/avatar_decoder.hpp"

namespace fcad::analysis {
namespace {

using nn::GraphBuilder;

nn::Graph two_branch_net() {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto shared = b.conv2d(in, "shared", {.out_ch = 8, .kernel = 3});
  auto a = b.conv2d(shared, "a", {.out_ch = 16, .kernel = 3});
  auto c = b.conv2d(shared, "c", {.out_ch = 4, .kernel = 3});
  b.output(a, "big");
  b.output(c, "small");
  auto g = std::move(b).build();
  FCAD_CHECK(g.is_ok());
  return std::move(g).value();
}

TEST(BranchesTest, BranchPerOutput) {
  const nn::Graph g = two_branch_net();
  const auto profile = profile_graph(g);
  auto d = decompose(g, profile);
  ASSERT_TRUE(d.is_ok());
  ASSERT_EQ(d->branches.size(), 2u);
  EXPECT_EQ(d->branches[0].role, "big");
  EXPECT_EQ(d->branches[1].role, "small");
}

TEST(BranchesTest, SharedLayersDetected) {
  const nn::Graph g = two_branch_net();
  const auto profile = profile_graph(g);
  auto d = decompose(g, profile);
  ASSERT_TRUE(d.is_ok());
  // input + shared conv are on both branch paths.
  ASSERT_EQ(d->shared.size(), 2u);
  EXPECT_EQ(g.layer(d->shared[1]).name, "shared");
}

TEST(BranchesTest, PathDemandIncludesShared) {
  const nn::Graph g = two_branch_net();
  const auto profile = profile_graph(g);
  auto d = decompose(g, profile);
  ASSERT_TRUE(d.is_ok());
  // Both branches' raw ops include the shared conv, so their sum exceeds the
  // graph total.
  EXPECT_GT(d->branches[0].ops + d->branches[1].ops, profile.total_ops);
}

TEST(BranchesTest, AttributionSumsToGraphTotals) {
  for (const nn::Graph& g :
       {two_branch_net(), nn::zoo::avatar_decoder(), nn::zoo::mimic_decoder()}) {
    const auto profile = profile_graph(g);
    auto d = decompose(g, profile);
    ASSERT_TRUE(d.is_ok());
    std::int64_t ops = 0, macs = 0, params = 0;
    for (const auto& br : d->branches) {
      ops += br.ops_attributed;
      macs += br.macs_attributed;
      params += br.params_attributed;
    }
    EXPECT_EQ(ops, profile.total_ops) << g.name();
    EXPECT_EQ(macs, profile.total_macs) << g.name();
    EXPECT_EQ(params, profile.total_params) << g.name();
  }
}

TEST(BranchesTest, SharedGoesToHigherDemandBranch) {
  const nn::Graph g = two_branch_net();
  const auto profile = profile_graph(g);
  auto d = decompose(g, profile);
  ASSERT_TRUE(d.is_ok());
  // Branch "big" (16-channel conv) has more total demand, so it absorbs the
  // shared conv's ops; "small" keeps only its own conv.
  const auto& small = d->branches[1];
  std::int64_t own_conv_ops = 0;
  for (nn::LayerId id : small.layers) {
    if (g.layer(id).name == "c") {
      own_conv_ops = profile.layers[static_cast<std::size_t>(id)].ops;
    }
  }
  EXPECT_EQ(small.ops_attributed, own_conv_ops);
}

TEST(BranchesTest, LayersAreInTopologicalOrder) {
  const nn::Graph g = nn::zoo::avatar_decoder();
  const auto profile = profile_graph(g);
  auto d = decompose(g, profile);
  ASSERT_TRUE(d.is_ok());
  for (const auto& br : d->branches) {
    for (std::size_t i = 1; i < br.layers.size(); ++i) {
      EXPECT_LT(br.layers[i - 1], br.layers[i]);
    }
    EXPECT_EQ(br.layers.back(), br.output);
  }
}

TEST(BranchesTest, UsersIndexConsistentWithShared) {
  const nn::Graph g = nn::zoo::avatar_decoder();
  const auto profile = profile_graph(g);
  auto d = decompose(g, profile);
  ASSERT_TRUE(d.is_ok());
  for (std::size_t id = 0; id < g.size(); ++id) {
    const bool is_shared =
        std::find(d->shared.begin(), d->shared.end(),
                  static_cast<nn::LayerId>(id)) != d->shared.end();
    EXPECT_EQ(is_shared, d->users[id].size() > 1);
  }
}

}  // namespace
}  // namespace fcad::analysis
