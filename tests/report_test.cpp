#include <gtest/gtest.h>

#include "analysis/report.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "nn/zoo/classic_nets.hpp"
#include "util/log.hpp"

namespace fcad::analysis {
namespace {

struct Fixture {
  nn::Graph graph = nn::zoo::avatar_decoder();
  GraphProfile profile = profile_graph(graph);
  BranchDecomposition branches = [this] {
    auto d = decompose(graph, profile);
    FCAD_CHECK(d.is_ok());
    return std::move(d).value();
  }();
};

TEST(BranchSummaryTest, ContainsTableIGrammar) {
  Fixture f;
  const std::string summary = branch_summary(f.graph, f.profile, f.branches);
  // The run-length-encoded branch structures of Table I.
  EXPECT_NE(summary.find("[CAU]x5+C"), std::string::npos);
  EXPECT_NE(summary.find("[CAU]x7+C"), std::string::npos);
  EXPECT_NE(summary.find("[4,8,8]"), std::string::npos);
  EXPECT_NE(summary.find("[7,8,8]"), std::string::npos);
  EXPECT_NE(summary.find("[3,1024,1024]"), std::string::npos);
  EXPECT_NE(summary.find("geometry"), std::string::npos);
  EXPECT_NE(summary.find("total (shared counted once)"), std::string::npos);
}

TEST(BranchSummaryTest, SharesSumToAboutHundredPercent) {
  Fixture f;
  const std::string summary = branch_summary(f.graph, f.profile, f.branches);
  // Extract the "Share" percentages and check they sum to ~100.
  double total = 0;
  std::size_t pos = 0;
  int count = 0;
  while ((pos = summary.find('%', pos)) != std::string::npos) {
    std::size_t start = pos;
    while (start > 0 && (std::isdigit(summary[start - 1]) ||
                         summary[start - 1] == '.')) {
      --start;
    }
    total += std::stod(summary.substr(start, pos - start));
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 6);  // 3 branches x (ops share + params share)
  EXPECT_NEAR(total, 200.0, 0.5);
}

TEST(LayerListingTest, OneRowPerLayer) {
  Fixture f;
  const std::string listing = layer_listing(f.graph, f.profile);
  std::size_t rows = 0;
  for (std::size_t pos = 0;
       (pos = listing.find("conv", pos)) != std::string::npos; ++pos) {
    ++rows;
  }
  // 18 convs, each appearing in a name cell and a type cell ("conv2d").
  EXPECT_GE(rows, 18u);
  EXPECT_NE(listing.find("br2_l7_conv"), std::string::npos);
  EXPECT_NE(listing.find("[3,1024,1024]"), std::string::npos);
}

TEST(BranchSummaryTest, SingleBranchNetwork) {
  nn::Graph g = nn::zoo::alexnet();
  const GraphProfile profile = profile_graph(g);
  auto d = decompose(g, profile);
  ASSERT_TRUE(d.is_ok());
  const std::string summary = branch_summary(g, profile, *d);
  EXPECT_NE(summary.find("logits"), std::string::npos);
  EXPECT_NE(summary.find("100.0%"), std::string::npos);
}

TEST(LogTest, LevelFiltering) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Emitting below the level must be a no-op (reaches the else-branch).
  FCAD_LOG(kDebug) << "dropped";
  FCAD_LOG(kInfo) << "dropped too";
  set_log_level(LogLevel::kOff);
  FCAD_LOG(kError) << "dropped as well";
  set_log_level(before);
}

}  // namespace
}  // namespace fcad::analysis
