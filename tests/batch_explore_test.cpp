#include <gtest/gtest.h>

#include "arch/platform.hpp"
#include "dse/engine.hpp"
#include "nn/zoo/avatar_decoder.hpp"

namespace fcad::dse {
namespace {

const arch::ReorganizedModel& decoder_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(m.is_ok());
    return std::move(m).value();
  }();
  return model;
}

DseRequest fast_request(const arch::Platform& platform) {
  DseRequest request;
  request.platform = platform;
  request.customization.batch_sizes = {1, 1, 1};
  request.options.population = 30;
  request.options.iterations = 5;
  request.options.seed = 61;
  return request;
}

TEST(MaxBatchTest, GeometryBranchScalesFurthestOnBigFpga) {
  // Br.1 is the lightest branch: on ZU9CG it should replicate several times
  // while the HD texture branch saturates earlier.
  auto geo = max_feasible_batch(decoder_model(),
                                fast_request(arch::platform_zu9cg()), 0, 8);
  ASSERT_TRUE(geo.is_ok()) << geo.status().to_string();
  auto tex = max_feasible_batch(decoder_model(),
                                fast_request(arch::platform_zu9cg()), 1, 8);
  ASSERT_TRUE(tex.is_ok());
  EXPECT_GE(*geo, 2);
  EXPECT_GE(*geo, *tex);
}

TEST(MaxBatchTest, SmallerFpgaSmallerBatch) {
  auto big = max_feasible_batch(decoder_model(),
                                fast_request(arch::platform_zu9cg()), 1, 8);
  auto small = max_feasible_batch(decoder_model(),
                                  fast_request(arch::platform_z7045()), 1, 8);
  ASSERT_TRUE(big.is_ok());
  ASSERT_TRUE(small.is_ok());
  EXPECT_LE(*small, *big);
}

TEST(MaxBatchTest, ProbeLimitRespected) {
  auto result = max_feasible_batch(decoder_model(),
                                   fast_request(arch::platform_zu9cg()), 0, 2);
  ASSERT_TRUE(result.is_ok());
  EXPECT_LE(*result, 2);
  EXPECT_GE(*result, 1);
}

TEST(MaxBatchTest, InfeasibleBaseReturnsZero) {
  // An absurdly small ASIC cannot even fit batch 1 of the texture branch.
  DseRequest request =
      fast_request(arch::make_asic("nano", 8, 0.05, 0.05, 200));
  auto result = max_feasible_batch(decoder_model(), request, 1, 4);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(*result, 0);
}

TEST(MaxBatchTest, BadBranchRejected) {
  auto result = max_feasible_batch(decoder_model(),
                                   fast_request(arch::platform_zu9cg()), 7);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MaxBatchTest, ResultIsActuallyFeasible) {
  DseRequest request = fast_request(arch::platform_zu17eg());
  auto max_batch = max_feasible_batch(decoder_model(), request, 2, 8);
  ASSERT_TRUE(max_batch.is_ok());
  ASSERT_GE(*max_batch, 1);
  // Re-run the DSE at the reported batch: must be feasible.
  request.customization.batch_sizes[2] = *max_batch;
  auto result = optimize(decoder_model(), request);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result->feasible);
}

}  // namespace
}  // namespace fcad::dse
