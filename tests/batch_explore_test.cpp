#include <gtest/gtest.h>

#include "arch/platform.hpp"
#include "dse/search_driver.hpp"
#include "nn/zoo/avatar_decoder.hpp"

namespace fcad::dse {
namespace {

const arch::ReorganizedModel& decoder_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(m.is_ok());
    return std::move(m).value();
  }();
  return model;
}

SearchSpec max_batch_spec(int branch, int probe_limit = 16) {
  SearchSpec spec;
  spec.kind = SearchKind::kMaxBatch;
  spec.customization.batch_sizes = {1, 1, 1};
  spec.search.population = 30;
  spec.search.iterations = 5;
  spec.search.seed = 61;
  spec.batch_branch = branch;
  spec.batch_probe_limit = probe_limit;
  return spec;
}

StatusOr<int> probe(const arch::Platform& platform, int branch,
                    int probe_limit = 16) {
  auto outcome = SearchDriver(decoder_model(), platform)
                     .run(max_batch_spec(branch, probe_limit));
  if (!outcome.is_ok()) return outcome.status();
  return outcome->max_batch;
}

TEST(MaxBatchTest, GeometryBranchScalesFurthestOnBigFpga) {
  // Br.1 is the lightest branch: on ZU9CG it should replicate several times
  // while the HD texture branch saturates earlier.
  auto geo = probe(arch::platform_zu9cg(), 0, 8);
  ASSERT_TRUE(geo.is_ok()) << geo.status().to_string();
  auto tex = probe(arch::platform_zu9cg(), 1, 8);
  ASSERT_TRUE(tex.is_ok());
  EXPECT_GE(*geo, 2);
  EXPECT_GE(*geo, *tex);
}

TEST(MaxBatchTest, SmallerFpgaSmallerBatch) {
  auto big = probe(arch::platform_zu9cg(), 1, 8);
  auto small = probe(arch::platform_z7045(), 1, 8);
  ASSERT_TRUE(big.is_ok());
  ASSERT_TRUE(small.is_ok());
  EXPECT_LE(*small, *big);
}

TEST(MaxBatchTest, ProbeLimitRespected) {
  auto result = probe(arch::platform_zu9cg(), 0, 2);
  ASSERT_TRUE(result.is_ok());
  EXPECT_LE(*result, 2);
  EXPECT_GE(*result, 1);
}

TEST(MaxBatchTest, InfeasibleBaseReturnsZero) {
  // An absurdly small ASIC cannot even fit batch 1 of the texture branch.
  auto result = probe(arch::make_asic("nano", 8, 0.05, 0.05, 200), 1, 4);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(*result, 0);
}

TEST(MaxBatchTest, BadBranchRejected) {
  auto result = probe(arch::platform_zu9cg(), 7);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MaxBatchTest, OutcomeSearchHoldsTheWinnerAtMaxBatch) {
  // The outcome's search must be the feasible configuration at the reported
  // max batch — not whichever (possibly infeasible) probe happened to run
  // last during bisection.
  auto outcome = SearchDriver(decoder_model(), arch::platform_zu9cg())
                     .run(max_batch_spec(0, 8));
  ASSERT_TRUE(outcome.is_ok());
  ASSERT_GE(outcome->max_batch, 2);
  EXPECT_TRUE(outcome->search.feasible);
  ASSERT_FALSE(outcome->search.config.branches.empty());
  EXPECT_EQ(outcome->search.config.branches[0].batch, outcome->max_batch);
}

TEST(MaxBatchTest, ResultIsActuallyFeasible) {
  auto max_batch = probe(arch::platform_zu17eg(), 2, 8);
  ASSERT_TRUE(max_batch.is_ok());
  ASSERT_GE(*max_batch, 1);
  // Re-run the DSE at the reported batch: must be feasible.
  SearchSpec spec = max_batch_spec(2, 8);
  spec.kind = SearchKind::kOptimize;
  spec.customization.batch_sizes[2] = *max_batch;
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu17eg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_TRUE(outcome->search.feasible);
}

}  // namespace
}  // namespace fcad::dse
