#include <gtest/gtest.h>

#include "analysis/profile.hpp"
#include "arch/reorg.hpp"
#include "dse/design_space.hpp"
#include "nn/zoo/scaled_decoder.hpp"

namespace fcad::nn::zoo {
namespace {

TEST(ScaledDecoderTest, BranchCountHonored) {
  for (int branches : {1, 2, 3, 5, 6}) {
    ScaledDecoderSpec spec;
    spec.branches = branches;
    const Graph g = scaled_decoder(spec);
    EXPECT_EQ(g.output_ids().size(), static_cast<std::size_t>(branches));
    auto model = arch::reorganize(g);
    ASSERT_TRUE(model.is_ok()) << model.status().to_string();
    EXPECT_EQ(model->num_branches(), branches);
  }
}

TEST(ScaledDecoderTest, WidthScalesDemand) {
  ScaledDecoderSpec narrow;
  narrow.width = 0.5;
  ScaledDecoderSpec wide;
  wide.width = 2.0;
  const auto pn = analysis::profile_graph(scaled_decoder(narrow));
  const auto pw = analysis::profile_graph(scaled_decoder(wide));
  // MACs scale roughly quadratically with width; at least 4x here.
  EXPECT_GT(pw.total_macs, 4 * pn.total_macs);
}

TEST(ScaledDecoderTest, SingleBranchHasNoSharing) {
  ScaledDecoderSpec spec;
  spec.branches = 1;
  auto model = arch::reorganize(scaled_decoder(spec));
  ASSERT_TRUE(model.is_ok());
  EXPECT_TRUE(model->shared_stages.empty());
}

TEST(ScaledDecoderTest, MultiBranchSharesFrontEnd) {
  ScaledDecoderSpec spec;
  spec.branches = 4;
  auto model = arch::reorganize(scaled_decoder(spec));
  ASSERT_TRUE(model.is_ok());
  EXPECT_EQ(model->shared_stages.size(), 2u);  // sh_l1, sh_l2
}

TEST(ScaledDecoderTest, DesignSpaceGrowsWithBranches) {
  double prev = 0;
  for (int branches : {1, 3, 6}) {
    ScaledDecoderSpec spec;
    spec.branches = branches;
    auto model = arch::reorganize(scaled_decoder(spec));
    ASSERT_TRUE(model.is_ok());
    const dse::DesignSpaceStats stats = dse::design_space_stats(*model);
    EXPECT_GT(stats.log10_configs, prev);
    prev = stats.log10_configs;
  }
}

TEST(ScaledDecoderTest, UntiedBiasToggle) {
  ScaledDecoderSpec untied;
  ScaledDecoderSpec tied;
  tied.untied_bias = false;
  const auto pu = analysis::profile_graph(scaled_decoder(untied));
  const auto pt = analysis::profile_graph(scaled_decoder(tied));
  EXPECT_GT(pu.total_params, pt.total_params);
}

TEST(ScaledDecoderTest, BadSpecsRejected) {
  ScaledDecoderSpec zero;
  zero.branches = 0;
  EXPECT_THROW(scaled_decoder(zero), InternalError);
  ScaledDecoderSpec tiny;
  tiny.width = 0.01;
  EXPECT_THROW(scaled_decoder(tiny), InternalError);
  ScaledDecoderSpec deep;
  deep.texture_steps = 9;
  EXPECT_THROW(scaled_decoder(deep), InternalError);
}

}  // namespace
}  // namespace fcad::nn::zoo
