#include <gtest/gtest.h>

#include "arch/platform.hpp"
#include "baselines/dnnbuilder.hpp"
#include "baselines/hybriddnn.hpp"
#include "baselines/soc865.hpp"
#include "nn/zoo/avatar_decoder.hpp"

namespace fcad::baselines {
namespace {

const arch::ReorganizedModel& mimic_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::mimic_decoder());
    FCAD_CHECK(m.is_ok());
    return std::move(m).value();
  }();
  return model;
}

// ------------------------------------------------------------ DNNBuilder --
TEST(DnnBuilderTest, RespectsBudgets) {
  for (const arch::Platform& p : arch::all_platforms()) {
    const DnnBuilderResult r =
        run_dnnbuilder(mimic_model(), p, nn::DataType::kInt8);
    EXPECT_LE(r.dsps, p.dsps) << p.name;
    EXPECT_LE(r.brams, p.brams18k) << p.name;
    EXPECT_GT(r.fps, 0) << p.name;
  }
}

TEST(DnnBuilderTest, FpsPlateausAcrossSchemes) {
  // The Sec. III headline: more FPGA does not help DNNBuilder because the
  // capped layers pin the bottleneck.
  const auto s1 =
      run_dnnbuilder(mimic_model(), arch::platform_z7045(), nn::DataType::kInt8);
  const auto s3 =
      run_dnnbuilder(mimic_model(), arch::platform_zu9cg(), nn::DataType::kInt8);
  EXPECT_NEAR(s3.fps, s1.fps, 0.05 * s1.fps);
}

TEST(DnnBuilderTest, EfficiencyCollapsesWithBudget) {
  const auto s1 =
      run_dnnbuilder(mimic_model(), arch::platform_z7045(), nn::DataType::kInt8);
  const auto s3 =
      run_dnnbuilder(mimic_model(), arch::platform_zu9cg(), nn::DataType::kInt8);
  EXPECT_GT(s3.dsps, s1.dsps);          // it keeps allocating...
  EXPECT_LT(s3.efficiency, s1.efficiency);  // ...to no effect
}

TEST(DnnBuilderTest, BottleneckLayersAreCapped) {
  const auto r =
      run_dnnbuilder(mimic_model(), arch::platform_zu9cg(), nn::DataType::kInt8);
  // The slowest layer must be at its 2-level parallelism cap — otherwise the
  // allocator would have grown it.
  double max_cycles = 0;
  const DnnBuilderLayer* slowest = nullptr;
  for (const DnnBuilderLayer& layer : r.layers) {
    if (layer.cycles > max_cycles) {
      max_cycles = layer.cycles;
      slowest = &layer;
    }
  }
  ASSERT_NE(slowest, nullptr);
  EXPECT_TRUE(slowest->capped);
  EXPECT_EQ(slowest->cfg.h, 1);  // two-level parallelism only
}

TEST(DnnBuilderTest, CappedLayerLatencyFlatAcrossSchemes) {
  const auto s1 =
      run_dnnbuilder(mimic_model(), arch::platform_z7045(), nn::DataType::kInt8);
  const auto s3 =
      run_dnnbuilder(mimic_model(), arch::platform_zu9cg(), nn::DataType::kInt8);
  for (std::size_t i = 0; i < s1.layers.size(); ++i) {
    if (s1.layers[i].capped) {
      EXPECT_DOUBLE_EQ(s1.layers[i].cycles, s3.layers[i].cycles)
          << "capped layer " << i << " must not speed up";
    }
  }
}

TEST(DnnBuilderTest, EightBitPacksTwoPerDsp) {
  const auto r8 =
      run_dnnbuilder(mimic_model(), arch::platform_zu9cg(), nn::DataType::kInt8);
  const auto r16 = run_dnnbuilder(mimic_model(), arch::platform_zu9cg(),
                                  nn::DataType::kInt16);
  // Same lane allocation costs twice the DSPs at 16-bit (roughly; rounding).
  EXPECT_GT(r8.fps, r16.fps * 0.9);
}

// ------------------------------------------------------------- HybridDNN --
TEST(HybridDnnTest, EngineIsPowerOfTwo) {
  for (const arch::Platform& p : arch::all_platforms()) {
    const HybridDnnResult r =
        run_hybriddnn(mimic_model(), p, nn::DataType::kInt16);
    ASSERT_GT(r.lanes, 0) << p.name;
    EXPECT_EQ(r.lanes & (r.lanes - 1), 0) << p.name;
    EXPECT_LE(r.dsps, p.dsps);
    EXPECT_LE(r.brams, p.brams18k);
  }
}

TEST(HybridDnnTest, PaperEnginePoints) {
  // Scheme 1 (Z7045): 512-lane engine; schemes 2-3 (ZU17EG/ZU9CG): 1024.
  EXPECT_EQ(run_hybriddnn(mimic_model(), arch::platform_z7045(),
                          nn::DataType::kInt16)
                .lanes,
            512);
  EXPECT_EQ(run_hybriddnn(mimic_model(), arch::platform_zu17eg(),
                          nn::DataType::kInt16)
                .lanes,
            1024);
  EXPECT_EQ(run_hybriddnn(mimic_model(), arch::platform_zu9cg(),
                          nn::DataType::kInt16)
                .lanes,
            1024);
}

TEST(HybridDnnTest, BramBlocksScalingOnZu9cg) {
  // ZU9CG has DSPs for a 2048-lane engine but not the BRAM — the paper's
  // Scheme 3 observation.
  const HybridDnnResult r =
      run_hybriddnn(mimic_model(), arch::platform_zu9cg(), nn::DataType::kInt16);
  EXPECT_TRUE(r.bram_blocked_scaling);
  const HybridDnnResult r17 = run_hybriddnn(
      mimic_model(), arch::platform_zu17eg(), nn::DataType::kInt16);
  EXPECT_FALSE(r17.bram_blocked_scaling);  // ZU17EG lacks the DSPs anyway
}

TEST(HybridDnnTest, DoubleEngineRoughlyDoublesFps) {
  const auto s1 =
      run_hybriddnn(mimic_model(), arch::platform_z7045(), nn::DataType::kInt16);
  const auto s2 = run_hybriddnn(mimic_model(), arch::platform_zu17eg(),
                                nn::DataType::kInt16);
  EXPECT_GT(s2.fps, 1.6 * s1.fps);
  EXPECT_LT(s2.fps, 2.4 * s1.fps);
}

TEST(HybridDnnTest, EfficiencyInPaperBand) {
  const auto r =
      run_hybriddnn(mimic_model(), arch::platform_zu9cg(), nn::DataType::kInt16);
  EXPECT_GT(r.efficiency, 0.6);
  EXPECT_LT(r.efficiency, 0.9);
}

TEST(HybridDnnTest, LayerExecsCoverAllStagesWithValidSplits) {
  const auto r =
      run_hybriddnn(mimic_model(), arch::platform_zu9cg(), nn::DataType::kInt16);
  EXPECT_EQ(r.layers.size(), mimic_model().fused.stages.size());
  for (const HybridDnnLayerExec& e : r.layers) {
    EXPECT_EQ(e.cpf * e.kpf * e.spf, r.lanes);
    EXPECT_GT(e.cycles, 0);
    EXPECT_LE(e.utilization, 1.0);
  }
}

// --------------------------------------------------------------- 865 SoC --
TEST(Soc865Test, LandsNearPaperNumbers) {
  const Soc865Result r = run_soc865(mimic_model());
  // Paper: 35.8 FPS / 16.9% on a 13.1-GOP mimic; ours is a ~17.5-GOP decoder
  // so proportionally slower. Check the band, not the point.
  EXPECT_GT(r.fps, 15.0);
  EXPECT_LT(r.fps, 60.0);
  EXPECT_GT(r.efficiency, 0.08);
  EXPECT_LT(r.efficiency, 0.30);
}

TEST(Soc865Test, HdLayersAreMemoryBound) {
  const Soc865Result r = run_soc865(mimic_model());
  int memory_bound = 0;
  for (const SocLayerTime& lt : r.layers) {
    memory_bound += lt.memory_bound;
  }
  EXPECT_GT(memory_bound, 0);  // the cache-capacity mechanism is active
}

TEST(Soc865Test, BiggerCacheHelps) {
  Soc865Params small;
  small.cache_mib = 1.0;
  Soc865Params big;
  big.cache_mib = 64.0;  // everything fits
  const double fps_small = run_soc865(mimic_model(), small).fps;
  const double fps_big = run_soc865(mimic_model(), big).fps;
  EXPECT_GT(fps_big, fps_small);
}

TEST(Soc865Test, OverfetchIsCapped) {
  Soc865Params p;
  p.max_overfetch = 4.0;
  const Soc865Result r = run_soc865(mimic_model(), p);
  for (const SocLayerTime& lt : r.layers) {
    EXPECT_LE(lt.overfetch, 4.0);
    EXPECT_GE(lt.overfetch, 1.0);
  }
}

}  // namespace
}  // namespace fcad::baselines
