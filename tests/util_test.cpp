#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/table.hpp"

namespace fcad {
namespace {

// ---------------------------------------------------------------- Status --
TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(Status::invalid_argument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::infeasible("no fit").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::not_found("miss").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::internal("bug").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::invalid_argument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  const std::string repr = Status::infeasible("budget too small").to_string();
  EXPECT_NE(repr.find("INFEASIBLE"), std::string::npos);
  EXPECT_NE(repr.find("budget too small"), std::string::npos);
}

TEST(StatusTest, CodeNamesAreDistinct) {
  std::set<std::string> names;
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kInfeasible,
        StatusCode::kNotFound, StatusCode::kInternal}) {
    names.insert(status_code_name(code));
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::not_found("nope");
  ASSERT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, ValueOnErrorThrows) {
  StatusOr<int> v = Status::internal("bug");
  EXPECT_THROW(v.value(), InternalError);
}

TEST(StatusOrTest, OkStatusWithoutValueIsAnInvariantViolation) {
  EXPECT_THROW((StatusOr<int>(Status::ok())), InternalError);
}

TEST(CheckTest, ThrowsWithLocation) {
  try {
    FCAD_CHECK_MSG(false, "extra context");
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("extra context"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
  }
}

// ------------------------------------------------------------------- Rng --
TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, IntInInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(RngTest, IntDegenerateRange) {
  Rng rng(9);
  EXPECT_EQ(rng.next_int(5, 5), 5);
}

TEST(RngTest, SimplexSumsToOne) {
  Rng rng(11);
  for (std::size_t n : {1u, 2u, 3u, 10u}) {
    const std::vector<double> w = rng.next_simplex(n);
    ASSERT_EQ(w.size(), n);
    double sum = 0;
    for (double v : w) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(5);
  Rng child = parent.fork(1);
  Rng parent2(5);
  Rng child2 = parent2.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += child.next_u64() == child2.next_u64();
  EXPECT_LT(same, 2);
}

// --------------------------------------------------------------- formats --
TEST(FormatTest, Fixed) {
  EXPECT_EQ(format_fixed(1.2345, 2), "1.23");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(FormatTest, Count) {
  EXPECT_EQ(format_count(999, 1), "999");
  EXPECT_EQ(format_count(13600000000.0, 1), "13.6G");
  EXPECT_EQ(format_count(7200000.0, 1), "7.2M");
  EXPECT_EQ(format_count(1500.0, 1), "1.5k");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(format_bytes(512, 1), "512B");
  EXPECT_EQ(format_bytes(2048, 1), "2.0KiB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024, 1), "3.5MiB");
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(format_percent(0.816, 1), "81.6%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(FormatTest, ThousandsSeparatedInt) {
  EXPECT_EQ(format_int(0), "0");
  EXPECT_EQ(format_int(999), "999");
  EXPECT_EQ(format_int(13600), "13,600");
  EXPECT_EQ(format_int(-1234567), "-1,234,567");
}

// ----------------------------------------------------------------- table --
TEST(TableTest, RendersAlignedColumns) {
  TablePrinter t({"a", "long header"});
  t.add_row({"x", "1"});
  t.add_row({"yy", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| a  | long header |"), std::string::npos);
  EXPECT_NE(out.find("| yy | 22          |"), std::string::npos);
}

TEST(TableTest, SeparatorInsertedBetweenGroups) {
  TablePrinter t({"h"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.to_string();
  // header rule + top + separator + bottom = 4 rules
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+---", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TableTest, ArityMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InternalError);
}

// ------------------------------------------------------------------- csv --
TEST(CsvTest, PlainRows) {
  CsvWriter w({"x", "y"});
  w.add_row({"1", "2"});
  EXPECT_EQ(w.to_string(), "x,y\n1,2\n");
}

TEST(CsvTest, EscapesSpecialCharacters) {
  CsvWriter w({"v"});
  w.add_row({"a,b"});
  w.add_row({"say \"hi\""});
  w.add_row({"two\nlines"});
  const std::string out = w.to_string();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(out.find("\"two\nlines\""), std::string::npos);
}

TEST(CsvTest, ArityMismatchThrows) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), InternalError);
}

TEST(JsonTest, NestedDocument) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("fcad");
  json.key("feasible").value(true);
  json.key("fitness").value(269.25);
  json.key("branches").begin_array();
  json.begin_object().key("fps").value(95.5).end_object();
  json.begin_object().key("fps").value(120).end_object();
  json.end_array();
  json.key("count").value(std::int64_t{2});
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"name\":\"fcad\",\"feasible\":true,\"fitness\":269.25,"
            "\"branches\":[{\"fps\":95.5},{\"fps\":120}],\"count\":2}");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(json_quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(json_quote(std::string("x\x01y")), "\"x\\u0001y\"");
}

TEST(JsonTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::nan(""));
  json.value(1.0 / 0.0);
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

}  // namespace
}  // namespace fcad
