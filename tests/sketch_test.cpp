// Quantile-sketch suite (serving step 9): the bounded-memory latency
// accounting behind `latency_mode = sketch` must (a) report quantiles
// within its alpha bound of the exact nearest-rank value at replay scale,
// (b) merge associatively and commutatively down to the byte — the property
// the multi-process checkpoint merge rests on — and (c) survive a binary
// round trip while rejecting torn or foreign blocks.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "serving/sketch.hpp"
#include "serving/stats.hpp"

namespace fcad::serving {
namespace {

constexpr std::uint64_t kSeed = 0x5eedf00d;

std::vector<double> lognormal_samples(std::uint64_t seed, std::size_t n) {
  // Latency-shaped values: a heavy right tail spanning a few decades, like
  // queueing delays under load.
  std::mt19937_64 rng(seed);
  std::lognormal_distribution<double> dist(9.0, 1.2);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(dist(rng));
  return out;
}

TEST(SketchTest, EmptyZeroAndExactFieldBehaviour) {
  QuantileSketch sketch(kSeed);
  EXPECT_EQ(sketch.count(), 0);
  EXPECT_EQ(sketch.quantile(50), 0);
  EXPECT_EQ(sketch.max(), 0);

  // Exact zeros get their own counter; count/sum/min/max stay exact.
  sketch.add(0);
  sketch.add(0);
  sketch.add(100);
  sketch.add(400);
  EXPECT_EQ(sketch.count(), 4);
  EXPECT_EQ(sketch.zero_count(), 2);
  EXPECT_EQ(sketch.sum(), 500);
  EXPECT_EQ(sketch.min(), 0);
  EXPECT_EQ(sketch.max(), 400);
  // Ranks 1..2 fall in the zero mass; the top rank is clamped to the exact
  // max, never a bucket representative above it.
  EXPECT_EQ(sketch.quantile(25), 0);
  EXPECT_EQ(sketch.quantile(50), 0);
  EXPECT_EQ(sketch.quantile(100), 400);
  EXPECT_EQ(sketch.compactions(), 0);
}

TEST(SketchTest, QuantilesWithinBoundOfExactAcrossTwentySeeds) {
  // The acceptance property: p50/p95/p99 within 0.5% relative error of the
  // exact nearest-rank percentile at 1M samples, over >= 20 seeds. The
  // sketch's own bound is alpha = 0.1%, so this holds with 5x headroom.
  constexpr std::size_t kSamples = 1'000'000;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::vector<double> values = lognormal_samples(seed * 7919, kSamples);
    QuantileSketch sketch(seed);
    for (double v : values) sketch.add(v);
    ASSERT_EQ(sketch.count(), static_cast<std::int64_t>(kSamples));
    for (double pct : {50.0, 95.0, 99.0}) {
      const double exact = percentile(values, pct);
      const double approx = sketch.quantile(pct);
      EXPECT_LE(std::abs(approx - exact) / exact, 0.005)
          << "seed " << seed << " p" << pct << ": exact " << exact
          << " sketch " << approx;
    }
    EXPECT_EQ(sketch.compactions(), 0)
        << "latency-scale input must never hit the collapse valve";
  }
}

TEST(SketchTest, MergeIsAssociativeCommutativeAndByteStable) {
  const std::vector<double> all = lognormal_samples(kSeed, 30'000);
  // Three disjoint slices — the shapes three shards would contribute.
  auto slice_sketch = [&](std::size_t lo, std::size_t hi) {
    QuantileSketch s(kSeed);
    for (std::size_t i = lo; i < hi; ++i) s.add(all[i]);
    return s;
  };
  const QuantileSketch a = slice_sketch(0, 10'000);
  const QuantileSketch b = slice_sketch(10'000, 20'000);
  const QuantileSketch c = slice_sketch(20'000, 30'000);

  QuantileSketch ab_c = a;
  ASSERT_TRUE(ab_c.merge(b).is_ok());
  ASSERT_TRUE(ab_c.merge(c).is_ok());
  QuantileSketch bc = b;
  ASSERT_TRUE(bc.merge(c).is_ok());
  QuantileSketch a_bc = a;
  ASSERT_TRUE(a_bc.merge(bc).is_ok());
  QuantileSketch c_b_a = c;
  ASSERT_TRUE(c_b_a.merge(b).is_ok());
  ASSERT_TRUE(c_b_a.merge(a).is_ok());

  // Byte-identical whatever the merge tree or order — and identical to the
  // sketch that saw every value directly (the single-process run).
  QuantileSketch direct(kSeed);
  for (double v : all) direct.add(v);
  EXPECT_EQ(ab_c.to_bytes(), a_bc.to_bytes());
  EXPECT_EQ(ab_c.to_bytes(), c_b_a.to_bytes());
  EXPECT_EQ(ab_c.to_bytes(), direct.to_bytes());
}

TEST(SketchTest, MergeRejectsForeignSeedOrAlpha) {
  QuantileSketch mine(kSeed);
  mine.add(10);
  QuantileSketch other_seed(kSeed + 1);
  other_seed.add(10);
  QuantileSketch other_alpha(kSeed, 0.01);
  other_alpha.add(10);
  EXPECT_EQ(mine.merge(other_seed).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mine.merge(other_alpha).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mine.count(), 1) << "a rejected merge must not mutate";
}

TEST(SketchTest, BinaryRoundTripIsExactAndTornBlocksAreRejected) {
  QuantileSketch sketch(kSeed);
  for (double v : lognormal_samples(kSeed, 10'000)) sketch.add(v);
  sketch.add(0);
  const std::string bytes = sketch.to_bytes();

  std::istringstream in(bytes);
  QuantileSketch loaded;
  ASSERT_TRUE(QuantileSketch::read_binary(in, loaded));
  EXPECT_EQ(loaded.to_bytes(), bytes);
  EXPECT_EQ(loaded.count(), sketch.count());
  EXPECT_EQ(loaded.quantile(99), sketch.quantile(99));
  EXPECT_EQ(loaded.seed(), sketch.seed());

  // Every proper prefix is a torn write; none may parse.
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::istringstream torn(bytes.substr(0, cut));
    QuantileSketch out;
    EXPECT_FALSE(QuantileSketch::read_binary(torn, out)) << "cut " << cut;
  }
  // A corrupted magic is foreign, not just short.
  std::string bad = bytes;
  bad[0] = static_cast<char>(bad[0] ^ 0x55);
  std::istringstream foreign(bad);
  QuantileSketch out;
  EXPECT_FALSE(QuantileSketch::read_binary(foreign, out));
}

TEST(SketchTest, SeedDerivationIsStableAndFingerprintBound) {
  const std::uint64_t a = sketch_seed_from_fingerprint("abc123");
  EXPECT_EQ(a, sketch_seed_from_fingerprint("abc123"));
  EXPECT_NE(a, sketch_seed_from_fingerprint("abc124"));
}

}  // namespace
}  // namespace fcad::serving
