// Staged-pipeline suite: end-to-end runs, stage caching/re-entry, artifact
// round trips, the spec-hash artifact cache, and the report renderers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "nn/builder.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "nn/zoo/classic_nets.hpp"

namespace fcad::core {
namespace {

PipelineOptions fast_options() {
  PipelineOptions options;
  options.spec.customization.quantization = nn::DataType::kInt8;
  options.spec.customization.batch_sizes = {1, 2, 2};
  options.spec.search.population = 30;
  options.spec.search.iterations = 5;
  options.spec.search.seed = 11;
  return options;
}

TEST(PipelineTest, EndToEndOnDecoder) {
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = pipeline.run(fast_options());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->decomposition.branches.size(), 3u);
  EXPECT_EQ(result->model.num_branches(), 3);
  EXPECT_TRUE(result->search.feasible);
  EXPECT_GT(result->search.eval.min_fps, 10.0);
  EXPECT_FALSE(result->simulation.has_value());
}

TEST(PipelineTest, SimulationOnRequest) {
  PipelineOptions options = fast_options();
  options.run_simulation = true;
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = pipeline.run(options);
  ASSERT_TRUE(result.is_ok());
  ASSERT_TRUE(result->simulation.has_value());
  // Simulated throughput within 10% of the analytical estimate.
  EXPECT_NEAR(result->simulation->min_fps, result->search.eval.min_fps,
              0.1 * result->search.eval.min_fps);
}

TEST(PipelineTest, SingleBranchBackbone) {
  PipelineOptions options;
  options.spec.search.population = 20;
  options.spec.search.iterations = 4;
  Pipeline pipeline(nn::zoo::alexnet(), arch::platform_ku115());
  auto result = pipeline.run(options);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->model.num_branches(), 1);
  EXPECT_GT(result->search.eval.min_fps, 0);
}

TEST(PipelineTest, BadCustomizationFails) {
  PipelineOptions options = fast_options();
  options.spec.customization.batch_sizes = {1};  // decoder has 3 branches
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = pipeline.run(options);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineTest, UnmappableGraphFails) {
  nn::GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto a = b.relu(in, "a");  // post-op with no major layer
  b.output(a, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  Pipeline pipeline(std::move(g).value(), arch::platform_zu9cg());
  auto result = pipeline.run(PipelineOptions{});
  EXPECT_FALSE(result.is_ok());
}

TEST(PipelineTest, StagesRunIncrementallyAndCache) {
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  EXPECT_EQ(pipeline.profile(), nullptr);
  EXPECT_EQ(pipeline.reorg(), nullptr);
  EXPECT_EQ(pipeline.search(), nullptr);

  ASSERT_TRUE(pipeline.analyze().is_ok());
  const ProfileArtifact* profile = pipeline.profile();
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->decomposition.branches.size(), 3u);

  ASSERT_TRUE(pipeline.construct().is_ok());
  const ReorgArtifact* reorg = pipeline.reorg();
  ASSERT_NE(reorg, nullptr);
  EXPECT_EQ(reorg->model.num_branches(), 3);

  // Analysis and construction are cached: a subsequent optimize (or a whole
  // spec ladder) reuses the very same artifacts, so a sweep over specs never
  // re-profiles the graph.
  ASSERT_TRUE(pipeline.optimize(fast_options().spec).is_ok());
  EXPECT_EQ(pipeline.profile(), profile);
  EXPECT_EQ(pipeline.reorg(), reorg);
  ASSERT_NE(pipeline.search(), nullptr);

  dse::SearchSpec second = fast_options().spec;
  second.search.seed = 12;
  ASSERT_TRUE(pipeline.optimize(second).is_ok());
  EXPECT_EQ(pipeline.profile(), profile);
  EXPECT_EQ(pipeline.reorg(), reorg);
  ASSERT_NE(pipeline.search(), nullptr);
  EXPECT_TRUE(pipeline.search()->best().feasible);
}

TEST(PipelineTest, SearchArtifactRoundTripsThroughText) {
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(pipeline.optimize(fast_options().spec).is_ok());
  const dse::SearchResult& original = pipeline.search()->best();

  const std::string text = pipeline.save_search();
  ASSERT_FALSE(text.empty());

  // Re-enter the optimization stage in a *fresh* pipeline from the artifact
  // alone: the configuration, headline stats, and re-evaluated metrics all
  // survive the round trip; doubles round-trip bit-exactly.
  Pipeline loaded(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(loaded.load_search(text).is_ok());
  const dse::SearchResult& restored = loaded.search()->best();
  EXPECT_EQ(restored.fitness, original.fitness);
  EXPECT_EQ(restored.feasible, original.feasible);
  EXPECT_EQ(restored.seconds, original.seconds);
  EXPECT_EQ(restored.trace.evaluations, original.trace.evaluations);
  ASSERT_EQ(restored.config.branches.size(), original.config.branches.size());
  for (std::size_t b = 0; b < original.config.branches.size(); ++b) {
    EXPECT_EQ(restored.config.branches[b].batch,
              original.config.branches[b].batch);
    EXPECT_EQ(restored.config.branches[b].units,
              original.config.branches[b].units);
  }
  EXPECT_EQ(restored.eval.dsps, original.eval.dsps);
  EXPECT_EQ(restored.eval.min_fps, original.eval.min_fps);
  // The convergence curve and the winning distribution survive too.
  EXPECT_EQ(restored.trace.best_fitness, original.trace.best_fitness);
  EXPECT_EQ(restored.distribution.c_frac, original.distribution.c_frac);
  EXPECT_EQ(restored.distribution.m_frac, original.distribution.m_frac);
  EXPECT_EQ(restored.distribution.bw_frac, original.distribution.bw_frac);
  // And serializing again reproduces the same text.
  EXPECT_EQ(loaded.save_search(), text);
}

TEST(PipelineTest, CancelledOutcomeStillSerializes) {
  // A run cancelled before its first evaluation has no winning config; the
  // artifact must round-trip (config 0) instead of crashing the writer.
  dse::SearchSpec spec = fast_options().spec;
  spec.control.cancel.request_cancel();
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(pipeline.optimize(spec).is_ok());
  ASSERT_TRUE(pipeline.search()->outcome.cancelled);
  ASSERT_TRUE(pipeline.search()->best().config.branches.empty());

  const std::string text = pipeline.save_search();
  ASSERT_FALSE(text.empty());
  Pipeline loaded(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(loaded.load_search(text).is_ok());
  EXPECT_TRUE(loaded.search()->outcome.cancelled);
  EXPECT_TRUE(loaded.search()->best().config.branches.empty());
  EXPECT_EQ(loaded.save_search(), text);
  // The same applies to a sweep whose grid points were all cancelled.
  dse::SearchSpec sweep = fast_options().spec;
  sweep.kind = dse::SearchKind::kSweep;
  sweep.control.cancel.request_cancel();
  Pipeline swept(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(swept.optimize(sweep).is_ok());
  const std::string sweep_text = swept.save_search();
  Pipeline sweep_loaded(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(sweep_loaded.load_search(sweep_text).is_ok());
  EXPECT_EQ(sweep_loaded.save_search(), sweep_text);
}

TEST(PipelineTest, LoadedArtifactDrivesSimulationAndResult) {
  Pipeline searcher(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(searcher.optimize(fast_options().spec).is_ok());
  const std::string text = searcher.save_search();

  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(pipeline.load_search(text).is_ok());
  ASSERT_TRUE(pipeline.simulate().is_ok());
  ASSERT_NE(pipeline.sim(), nullptr);
  auto result = pipeline.result();
  ASSERT_TRUE(result.is_ok());
  ASSERT_TRUE(result->simulation.has_value());
  EXPECT_GT(result->simulation->min_fps, 0);
}

TEST(PipelineTest, MalformedArtifactRejected) {
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  EXPECT_FALSE(pipeline.load_search("not an artifact").is_ok());
  // Artifacts from older formats (v1 winner-only, v2 without serving stats)
  // are not readable as v3 — a stale cache entry re-searches instead.
  EXPECT_FALSE(
      pipeline.load_search("fcad-search-artifact v1\nfitness 1\n").is_ok());
  EXPECT_FALSE(
      pipeline.load_search("fcad-search-artifact v2\nkind optimize\n")
          .is_ok());
  // A v3 header without a kind/result is incomplete.
  EXPECT_FALSE(
      pipeline.load_search("fcad-search-artifact v3\n").is_ok());
  EXPECT_FALSE(
      pipeline.load_search("fcad-search-artifact v3\nkind optimize\n")
          .is_ok());
  EXPECT_EQ(pipeline.search(), nullptr);
  // result() without completed stages is an error, not a crash.
  EXPECT_FALSE(pipeline.result().is_ok());
}

TEST(PipelineTest, TruncatedArtifactRejected) {
  // A torn write (crash / full disk) must parse as truncated, never as a
  // shorter-but-valid artifact: every serialized artifact ends with "end",
  // and any prefix of one is rejected.
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(pipeline.optimize(fast_options().spec).is_ok());
  const std::string text = pipeline.save_search();
  ASSERT_EQ(text.rfind("end\n"), text.size() - 4);

  Pipeline loaded(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  const std::string no_marker = text.substr(0, text.size() - 4);
  EXPECT_FALSE(loaded.load_search(no_marker).is_ok());
  // Cut mid-config: the line-counted block catches the short read.
  EXPECT_FALSE(loaded.load_search(text.substr(0, text.size() / 2)).is_ok());
}

TEST(PipelineTest, SweepArtifactRoundTripsWholeOutcome) {
  // kSweep outcomes serialize every grid point (not just a winner), so a
  // sweep re-enters whole — the prerequisite for the spec-hash cache.
  dse::SearchSpec spec = fast_options().spec;
  spec.kind = dse::SearchKind::kSweep;
  spec.sweep.quantizations = {nn::DataType::kInt8, nn::DataType::kInt16};
  spec.sweep.frequencies_mhz = {150, 200};
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(pipeline.optimize(spec).is_ok());
  const std::vector<dse::SweepPoint>& original =
      pipeline.search()->outcome.sweep;
  ASSERT_EQ(original.size(), 4u);

  const std::string text = pipeline.save_search();
  Pipeline loaded(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(loaded.load_search(text).is_ok());
  const std::vector<dse::SweepPoint>& restored =
      loaded.search()->outcome.sweep;
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i].quantization, original[i].quantization);
    EXPECT_EQ(restored[i].freq_mhz, original[i].freq_mhz);
    EXPECT_EQ(restored[i].pareto_optimal, original[i].pareto_optimal);
    EXPECT_EQ(restored[i].result.fitness, original[i].result.fitness);
    EXPECT_EQ(restored[i].result.feasible, original[i].result.feasible);
    EXPECT_EQ(restored[i].result.eval.min_fps,
              original[i].result.eval.min_fps);
    EXPECT_EQ(restored[i].result.eval.dsps, original[i].result.eval.dsps);
  }
  // Serializing again reproduces the same text (bit-exact doubles).
  EXPECT_EQ(loaded.save_search(), text);
}

TEST(PipelineTest, ConvergenceArtifactRoundTripsStats) {
  dse::SearchSpec spec = fast_options().spec;
  spec.kind = dse::SearchKind::kConvergence;
  spec.convergence_runs = 3;
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(pipeline.optimize(spec).is_ok());
  const dse::ConvergenceStats& original =
      pipeline.search()->outcome.convergence;

  const std::string text = pipeline.save_search();
  Pipeline loaded(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(loaded.load_search(text).is_ok());
  const dse::ConvergenceStats& restored =
      loaded.search()->outcome.convergence;
  EXPECT_EQ(restored.runs, original.runs);
  EXPECT_EQ(restored.mean_iterations, original.mean_iterations);
  EXPECT_EQ(restored.mean_fitness, original.mean_fitness);
  EXPECT_EQ(restored.fitness_spread, original.fitness_spread);
  EXPECT_EQ(loaded.save_search(), text);
  // No winning configuration in a convergence outcome: simulate() reports
  // that cleanly instead of crashing.
  EXPECT_FALSE(loaded.simulate().is_ok());
}

// ------------------------------------------------- spec-hash artifact cache --

namespace {

/// Fresh cache dir per test; gtest's TempDir is shared across the binary.
std::string cache_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("fcad-cache-" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

}  // namespace

TEST(ArtifactCacheTest, SecondRunHitsAndReloadsBitIdentical) {
  const std::string dir = cache_dir("hit");
  dse::SearchSpec spec = fast_options().spec;
  spec.kind = dse::SearchKind::kSweep;
  spec.sweep.quantizations = {nn::DataType::kInt8};
  spec.sweep.frequencies_mhz = {200, 300};

  Pipeline first(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  first.set_artifact_cache_dir(dir);
  ASSERT_TRUE(first.optimize(spec).is_ok());
  EXPECT_EQ(first.artifact_cache_hits(), 0);
  EXPECT_EQ(first.artifact_cache_misses(), 1);
  const std::string text = first.save_search();

  // A fresh process (modeled by a fresh pipeline) resumes from the cache:
  // no search runs, and the artifact is bit-identical.
  Pipeline second(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  second.set_artifact_cache_dir(dir);
  ASSERT_TRUE(second.optimize(spec).is_ok());
  EXPECT_EQ(second.artifact_cache_hits(), 1);
  EXPECT_EQ(second.artifact_cache_misses(), 0);
  EXPECT_EQ(second.save_search(), text);
  ASSERT_EQ(second.search()->outcome.sweep.size(), 2u);
}

TEST(ArtifactCacheTest, SpecChangeMissesTheCache) {
  const std::string dir = cache_dir("invalidate");
  dse::SearchSpec spec = fast_options().spec;
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  pipeline.set_artifact_cache_dir(dir);
  ASSERT_TRUE(pipeline.optimize(spec).is_ok());
  EXPECT_EQ(pipeline.artifact_cache_misses(), 1);

  // Any result-affecting field changes the key: the cached entry must not
  // be reused for a different seed...
  dse::SearchSpec reseeded = spec;
  reseeded.search.seed = spec.search.seed + 1;
  ASSERT_TRUE(pipeline.optimize(reseeded).is_ok());
  EXPECT_EQ(pipeline.artifact_cache_hits(), 0);
  EXPECT_EQ(pipeline.artifact_cache_misses(), 2);

  // ...or a different strategy...
  dse::SearchSpec restrategized = spec;
  restrategized.strategy = "random";
  ASSERT_TRUE(pipeline.optimize(restrategized).is_ok());
  EXPECT_EQ(pipeline.artifact_cache_hits(), 0);
  EXPECT_EQ(pipeline.artifact_cache_misses(), 3);

  // ...while the original spec still hits its own entry.
  ASSERT_TRUE(pipeline.optimize(spec).is_ok());
  EXPECT_EQ(pipeline.artifact_cache_hits(), 1);

  // Keys are also platform-scoped: the same spec on another platform
  // computes a different key.
  Pipeline other(nn::zoo::avatar_decoder(), arch::platform_zu17eg());
  EXPECT_NE(pipeline.artifact_cache_key(spec), other.artifact_cache_key(spec));
}

TEST(ArtifactCacheTest, UncacheableSpecsBypassTheCache) {
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  dse::SearchSpec spec = fast_options().spec;
  EXPECT_FALSE(pipeline.artifact_cache_key(spec).empty());
  // kTraffic qualifies since artifact v3 serializes the serving stats; its
  // key still differs from the kOptimize key (and from other traffic specs).
  dse::SearchSpec traffic = spec;
  traffic.kind = dse::SearchKind::kTraffic;
  EXPECT_FALSE(pipeline.artifact_cache_key(traffic).empty());
  EXPECT_NE(pipeline.artifact_cache_key(traffic),
            pipeline.artifact_cache_key(spec));
  dse::SearchSpec sharded = traffic;
  sharded.traffic.fleet.instances = 4;
  sharded.traffic.fleet.shards = 2;  // the shard count is part of the model
  EXPECT_NE(pipeline.artifact_cache_key(sharded),
            pipeline.artifact_cache_key(traffic));
  // A deadline makes results timing-dependent.
  spec = fast_options().spec;
  spec.control.deadline_s = 1.0;
  EXPECT_TRUE(pipeline.artifact_cache_key(spec).empty());

  // With no cache dir set, nothing is counted and nothing is written.
  const std::string dir = cache_dir("disabled");
  ASSERT_TRUE(pipeline.optimize(fast_options().spec).is_ok());
  EXPECT_EQ(pipeline.artifact_cache_hits(), 0);
  EXPECT_EQ(pipeline.artifact_cache_misses(), 0);
  EXPECT_FALSE(std::filesystem::exists(dir));
}

namespace {

/// Small SLA-aware traffic spec shared by the kTraffic round-trip tests.
dse::SearchSpec traffic_spec() {
  dse::SearchSpec spec;
  spec.kind = dse::SearchKind::kTraffic;
  spec.search.population = 20;
  spec.search.iterations = 4;
  spec.search.seed = 7;
  spec.traffic.workload.users = 2;
  spec.traffic.workload.frame_rate_hz = 10;
  spec.traffic.workload.duration_s = 0.5;
  spec.traffic.workload.seed = 21;
  spec.traffic.fleet.instances = 2;
  spec.traffic.fleet.sla_bound_us = 250000;
  spec.traffic.fleet.batch_timeout_us = 5000;
  spec.traffic.max_batch = 2;
  return spec;
}

void expect_traffic_identical(const dse::TrafficSearchResult& a,
                              const dse::TrafficSearchResult& b) {
  EXPECT_EQ(a.batch_sizes, b.batch_sizes);
  EXPECT_EQ(a.users_served, b.users_served);
  EXPECT_EQ(a.sla_met, b.sla_met);
  EXPECT_EQ(a.sla_fitness, b.sla_fitness);
  EXPECT_EQ(a.search.fitness, b.search.fitness);
  EXPECT_EQ(a.stats.offered, b.stats.offered);
  EXPECT_EQ(a.stats.completed, b.stats.completed);
  EXPECT_EQ(a.stats.latency.p99, b.stats.latency.p99);
  EXPECT_EQ(a.stats.latency.mean, b.stats.latency.mean);
  EXPECT_EQ(a.stats.queue_wait.p99, b.stats.queue_wait.p99);
  EXPECT_EQ(a.stats.throughput_rps, b.stats.throughput_rps);
  EXPECT_EQ(a.stats.sla_violation_rate, b.stats.sla_violation_rate);
  EXPECT_EQ(a.stats.branch_completed, b.stats.branch_completed);
  EXPECT_EQ(a.stats.instances.size(), b.stats.instances.size());
}

}  // namespace

TEST(PipelineTest, TrafficArtifactRoundTripsServingStats) {
  // The v3 gap-closer: a kTraffic outcome — including its ServingStats —
  // re-enters a fresh pipeline from the text artifact bit-exactly.
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(pipeline.optimize(traffic_spec()).is_ok());
  const dse::TrafficSearchResult& original =
      pipeline.search()->outcome.traffic;
  ASSERT_GT(original.stats.completed, 0);

  const std::string text = pipeline.save_search();
  ASSERT_FALSE(text.empty());
  Pipeline loaded(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(loaded.load_search(text).is_ok());
  EXPECT_EQ(loaded.search()->outcome.kind, dse::SearchKind::kTraffic);
  expect_traffic_identical(loaded.search()->outcome.traffic, original);
  // Serializing again reproduces the exact text, and the loaded winner can
  // drive the simulation stage.
  EXPECT_EQ(loaded.save_search(), text);
  EXPECT_TRUE(loaded.simulate().is_ok());
}

TEST(ArtifactCacheTest, SecondTrafficRunIsACacheHit) {
  const std::string dir = cache_dir("traffic");
  Pipeline first(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  first.set_artifact_cache_dir(dir);
  ASSERT_TRUE(first.optimize(traffic_spec()).is_ok());
  EXPECT_EQ(first.artifact_cache_hits(), 0);
  EXPECT_EQ(first.artifact_cache_misses(), 1);
  const std::string text = first.save_search();

  // A fresh pipeline (fresh process) with the identical spec must reload
  // the artifact — hit counter increments, no search runs, outcome
  // bit-identical down to the serving stats.
  Pipeline second(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  second.set_artifact_cache_dir(dir);
  ASSERT_TRUE(second.optimize(traffic_spec()).is_ok());
  EXPECT_EQ(second.artifact_cache_hits(), 1);
  EXPECT_EQ(second.artifact_cache_misses(), 0);
  EXPECT_EQ(second.save_search(), text);
  expect_traffic_identical(second.search()->outcome.traffic,
                           first.search()->outcome.traffic);

  // A different traffic load is a different key: no false sharing.
  dse::SearchSpec heavier = traffic_spec();
  heavier.traffic.workload.users = 3;
  ASSERT_TRUE(second.optimize(heavier).is_ok());
  EXPECT_EQ(second.artifact_cache_hits(), 1);
  EXPECT_EQ(second.artifact_cache_misses(), 1);
}

TEST(ArtifactCacheTest, CorruptEntryFallsBackToSearch) {
  const std::string dir = cache_dir("corrupt");
  dse::SearchSpec spec = fast_options().spec;
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  pipeline.set_artifact_cache_dir(dir);
  const std::string key = pipeline.artifact_cache_key(spec);
  ASSERT_FALSE(key.empty());
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(std::filesystem::path(dir) / (key + ".artifact"));
    out << "garbage\n";
  }
  ASSERT_TRUE(pipeline.optimize(spec).is_ok());
  EXPECT_EQ(pipeline.artifact_cache_hits(), 0);
  EXPECT_EQ(pipeline.artifact_cache_misses(), 1);
  EXPECT_TRUE(pipeline.search()->best().feasible);

  // The corrupt entry was overwritten with the good artifact: a rerun hits.
  Pipeline rerun(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  rerun.set_artifact_cache_dir(dir);
  ASSERT_TRUE(rerun.optimize(spec).is_ok());
  EXPECT_EQ(rerun.artifact_cache_hits(), 1);
}

TEST(ReportTest, CaseReportContainsKeyRows) {
  PipelineOptions options = fast_options();
  options.run_simulation = true;
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = pipeline.run(options);
  ASSERT_TRUE(result.is_ok());
  const std::string report =
      case_report("test case", *result, pipeline.platform());
  EXPECT_NE(report.find("test case"), std::string::npos);
  EXPECT_NE(report.find("ZU9CG"), std::string::npos);
  EXPECT_NE(report.find("geometry"), std::string::npos);
  EXPECT_NE(report.find("texture"), std::string::npos);
  EXPECT_NE(report.find("warp_field"), std::string::npos);
  EXPECT_NE(report.find("totals:"), std::string::npos);
  EXPECT_NE(report.find("simulator check"), std::string::npos);
}

TEST(ReportTest, SummaryLineFormat) {
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = pipeline.run(fast_options());
  ASSERT_TRUE(result.is_ok());
  const std::string line = summary_line(*result, pipeline.platform());
  EXPECT_NE(line.find("FPS {"), std::string::npos);
  EXPECT_NE(line.find("DSP "), std::string::npos);
  EXPECT_NE(line.find("/2520"), std::string::npos);
}

TEST(PlatformTest, CatalogMatchesPaperBudgets) {
  EXPECT_EQ(arch::platform_z7045().dsps, 900);
  EXPECT_EQ(arch::platform_z7045().brams18k, 1090);
  EXPECT_EQ(arch::platform_zu17eg().dsps, 1590);
  EXPECT_EQ(arch::platform_zu17eg().brams18k, 1592);
  EXPECT_EQ(arch::platform_zu9cg().dsps, 2520);
  EXPECT_EQ(arch::platform_zu9cg().brams18k, 1824);
  EXPECT_EQ(arch::platform_ku115().dsps, 5520);
  for (const auto& p : arch::all_platforms()) {
    EXPECT_DOUBLE_EQ(p.freq_mhz, 200.0) << p.name;
  }
}

TEST(PlatformTest, LookupByNameCaseInsensitive) {
  auto p = arch::platform_by_name("zu9cg");
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p->name, "ZU9CG");
  EXPECT_FALSE(arch::platform_by_name("nonexistent").is_ok());
}

TEST(PlatformTest, AsicBudget) {
  const arch::Platform asic =
      arch::make_asic("edge-npu", 4096, /*buffer_mib=*/4.0, /*bw=*/25.6,
                      /*freq=*/800.0);
  EXPECT_TRUE(asic.is_asic);
  EXPECT_EQ(asic.dsps, 4096);
  // 4 MiB in 18-Kbit blocks: 4*1024*1024*8 / 18432 = 1821 (ceil).
  EXPECT_EQ(asic.brams18k, 1821);
  EXPECT_GT(asic.bw_bytes_per_cycle(), 0);
}

}  // namespace
}  // namespace fcad::core
