// Staged-pipeline suite: end-to-end runs, stage caching/re-entry, artifact
// round trips, and the report renderers (formerly flow_test.cpp).
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "nn/builder.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "nn/zoo/classic_nets.hpp"

namespace fcad::core {
namespace {

PipelineOptions fast_options() {
  PipelineOptions options;
  options.spec.customization.quantization = nn::DataType::kInt8;
  options.spec.customization.batch_sizes = {1, 2, 2};
  options.spec.search.population = 30;
  options.spec.search.iterations = 5;
  options.spec.search.seed = 11;
  return options;
}

TEST(PipelineTest, EndToEndOnDecoder) {
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = pipeline.run(fast_options());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->decomposition.branches.size(), 3u);
  EXPECT_EQ(result->model.num_branches(), 3);
  EXPECT_TRUE(result->search.feasible);
  EXPECT_GT(result->search.eval.min_fps, 10.0);
  EXPECT_FALSE(result->simulation.has_value());
}

TEST(PipelineTest, SimulationOnRequest) {
  PipelineOptions options = fast_options();
  options.run_simulation = true;
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = pipeline.run(options);
  ASSERT_TRUE(result.is_ok());
  ASSERT_TRUE(result->simulation.has_value());
  // Simulated throughput within 10% of the analytical estimate.
  EXPECT_NEAR(result->simulation->min_fps, result->search.eval.min_fps,
              0.1 * result->search.eval.min_fps);
}

TEST(PipelineTest, SingleBranchBackbone) {
  PipelineOptions options;
  options.spec.search.population = 20;
  options.spec.search.iterations = 4;
  Pipeline pipeline(nn::zoo::alexnet(), arch::platform_ku115());
  auto result = pipeline.run(options);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->model.num_branches(), 1);
  EXPECT_GT(result->search.eval.min_fps, 0);
}

TEST(PipelineTest, BadCustomizationFails) {
  PipelineOptions options = fast_options();
  options.spec.customization.batch_sizes = {1};  // decoder has 3 branches
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = pipeline.run(options);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineTest, UnmappableGraphFails) {
  nn::GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto a = b.relu(in, "a");  // post-op with no major layer
  b.output(a, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  Pipeline pipeline(std::move(g).value(), arch::platform_zu9cg());
  auto result = pipeline.run(PipelineOptions{});
  EXPECT_FALSE(result.is_ok());
}

TEST(PipelineTest, StagesRunIncrementallyAndCache) {
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  EXPECT_EQ(pipeline.profile(), nullptr);
  EXPECT_EQ(pipeline.reorg(), nullptr);
  EXPECT_EQ(pipeline.search(), nullptr);

  ASSERT_TRUE(pipeline.analyze().is_ok());
  const ProfileArtifact* profile = pipeline.profile();
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->decomposition.branches.size(), 3u);

  ASSERT_TRUE(pipeline.construct().is_ok());
  const ReorgArtifact* reorg = pipeline.reorg();
  ASSERT_NE(reorg, nullptr);
  EXPECT_EQ(reorg->model.num_branches(), 3);

  // Analysis and construction are cached: a subsequent optimize (or a whole
  // spec ladder) reuses the very same artifacts, so a sweep over specs never
  // re-profiles the graph.
  ASSERT_TRUE(pipeline.optimize(fast_options().spec).is_ok());
  EXPECT_EQ(pipeline.profile(), profile);
  EXPECT_EQ(pipeline.reorg(), reorg);
  ASSERT_NE(pipeline.search(), nullptr);

  dse::SearchSpec second = fast_options().spec;
  second.search.seed = 12;
  ASSERT_TRUE(pipeline.optimize(second).is_ok());
  EXPECT_EQ(pipeline.profile(), profile);
  EXPECT_EQ(pipeline.reorg(), reorg);
  ASSERT_NE(pipeline.search(), nullptr);
  EXPECT_TRUE(pipeline.search()->best().feasible);
}

TEST(PipelineTest, SearchArtifactRoundTripsThroughText) {
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(pipeline.optimize(fast_options().spec).is_ok());
  const dse::SearchResult& original = pipeline.search()->best();

  const std::string text = pipeline.save_search();
  ASSERT_FALSE(text.empty());

  // Re-enter the optimization stage in a *fresh* pipeline from the artifact
  // alone: the configuration, headline stats, and re-evaluated metrics all
  // survive the round trip; doubles round-trip bit-exactly.
  Pipeline loaded(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(loaded.load_search(text).is_ok());
  const dse::SearchResult& restored = loaded.search()->best();
  EXPECT_EQ(restored.fitness, original.fitness);
  EXPECT_EQ(restored.feasible, original.feasible);
  EXPECT_EQ(restored.seconds, original.seconds);
  EXPECT_EQ(restored.trace.evaluations, original.trace.evaluations);
  ASSERT_EQ(restored.config.branches.size(), original.config.branches.size());
  for (std::size_t b = 0; b < original.config.branches.size(); ++b) {
    EXPECT_EQ(restored.config.branches[b].batch,
              original.config.branches[b].batch);
    EXPECT_EQ(restored.config.branches[b].units,
              original.config.branches[b].units);
  }
  EXPECT_EQ(restored.eval.dsps, original.eval.dsps);
  EXPECT_EQ(restored.eval.min_fps, original.eval.min_fps);
  // And serializing again reproduces the same text.
  EXPECT_EQ(loaded.save_search(), text);
}

TEST(PipelineTest, LoadedArtifactDrivesSimulationAndResult) {
  Pipeline searcher(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(searcher.optimize(fast_options().spec).is_ok());
  const std::string text = searcher.save_search();

  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  ASSERT_TRUE(pipeline.load_search(text).is_ok());
  ASSERT_TRUE(pipeline.simulate().is_ok());
  ASSERT_NE(pipeline.sim(), nullptr);
  auto result = pipeline.result();
  ASSERT_TRUE(result.is_ok());
  ASSERT_TRUE(result->simulation.has_value());
  EXPECT_GT(result->simulation->min_fps, 0);
}

TEST(PipelineTest, MalformedArtifactRejected) {
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  EXPECT_FALSE(pipeline.load_search("not an artifact").is_ok());
  EXPECT_FALSE(
      pipeline.load_search("fcad-search-artifact v1\nfitness 1\n").is_ok());
  EXPECT_EQ(pipeline.search(), nullptr);
  // result() without completed stages is an error, not a crash.
  EXPECT_FALSE(pipeline.result().is_ok());
}

TEST(ReportTest, CaseReportContainsKeyRows) {
  PipelineOptions options = fast_options();
  options.run_simulation = true;
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = pipeline.run(options);
  ASSERT_TRUE(result.is_ok());
  const std::string report =
      case_report("test case", *result, pipeline.platform());
  EXPECT_NE(report.find("test case"), std::string::npos);
  EXPECT_NE(report.find("ZU9CG"), std::string::npos);
  EXPECT_NE(report.find("geometry"), std::string::npos);
  EXPECT_NE(report.find("texture"), std::string::npos);
  EXPECT_NE(report.find("warp_field"), std::string::npos);
  EXPECT_NE(report.find("totals:"), std::string::npos);
  EXPECT_NE(report.find("simulator check"), std::string::npos);
}

TEST(ReportTest, SummaryLineFormat) {
  Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  auto result = pipeline.run(fast_options());
  ASSERT_TRUE(result.is_ok());
  const std::string line = summary_line(*result, pipeline.platform());
  EXPECT_NE(line.find("FPS {"), std::string::npos);
  EXPECT_NE(line.find("DSP "), std::string::npos);
  EXPECT_NE(line.find("/2520"), std::string::npos);
}

TEST(PlatformTest, CatalogMatchesPaperBudgets) {
  EXPECT_EQ(arch::platform_z7045().dsps, 900);
  EXPECT_EQ(arch::platform_z7045().brams18k, 1090);
  EXPECT_EQ(arch::platform_zu17eg().dsps, 1590);
  EXPECT_EQ(arch::platform_zu17eg().brams18k, 1592);
  EXPECT_EQ(arch::platform_zu9cg().dsps, 2520);
  EXPECT_EQ(arch::platform_zu9cg().brams18k, 1824);
  EXPECT_EQ(arch::platform_ku115().dsps, 5520);
  for (const auto& p : arch::all_platforms()) {
    EXPECT_DOUBLE_EQ(p.freq_mhz, 200.0) << p.name;
  }
}

TEST(PlatformTest, LookupByNameCaseInsensitive) {
  auto p = arch::platform_by_name("zu9cg");
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p->name, "ZU9CG");
  EXPECT_FALSE(arch::platform_by_name("nonexistent").is_ok());
}

TEST(PlatformTest, AsicBudget) {
  const arch::Platform asic =
      arch::make_asic("edge-npu", 4096, /*buffer_mib=*/4.0, /*bw=*/25.6,
                      /*freq=*/800.0);
  EXPECT_TRUE(asic.is_asic);
  EXPECT_EQ(asic.dsps, 4096);
  // 4 MiB in 18-Kbit blocks: 4*1024*1024*8 / 18432 = 1821 (ceil).
  EXPECT_EQ(asic.brams18k, 1821);
  EXPECT_GT(asic.bw_bytes_per_cycle(), 0);
}

}  // namespace
}  // namespace fcad::core
