#include <gtest/gtest.h>

#include "arch/resource_model.hpp"

namespace fcad::arch {
namespace {

FusedStage make_stage(int in_ch, int out_ch, int h, int w, int kernel,
                      bool untied = true) {
  FusedStage st;
  st.kind = FusedStage::Kind::kConv;
  st.name = "stage";
  st.in_ch = in_ch;
  st.out_ch = out_ch;
  st.in_h = h;
  st.in_w = w;
  st.out_h = h;
  st.out_w = w;
  st.final_ch = out_ch;
  st.final_h = h;
  st.final_w = w;
  st.kernel = kernel;
  st.macs = static_cast<std::int64_t>(out_ch) * in_ch * h * w * kernel * kernel;
  st.ops = 2 * st.macs;
  st.weight_params = static_cast<std::int64_t>(out_ch) * in_ch * kernel * kernel;
  st.untied_bias = untied;
  st.has_bias = true;
  st.bias_params = untied ? static_cast<std::int64_t>(h) * w : out_ch;
  return st;
}

TEST(ResourceModelTest, DspPackingByOperandWidth) {
  const FusedStage st = make_stage(32, 32, 64, 64, 3);
  const UnitConfig cfg{8, 8, 2};  // 128 lanes
  const auto r8 =
      unit_resources(st, cfg, nn::DataType::kInt8, nn::DataType::kInt8);
  const auto r16 =
      unit_resources(st, cfg, nn::DataType::kInt16, nn::DataType::kInt16);
  EXPECT_EQ(r8.dsps, 64);    // two 8-bit MACs per DSP
  EXPECT_EQ(r16.dsps, 128);  // one 16-bit MAC per DSP
}

TEST(ResourceModelTest, BramsGrowWithParallelism) {
  const FusedStage st = make_stage(64, 64, 128, 128, 4);
  int prev = 0;
  for (int f : {1, 4, 16}) {
    const auto r = unit_resources(st, UnitConfig{f, f, 2},
                                  nn::DataType::kInt8, nn::DataType::kInt8);
    EXPECT_GE(r.brams, prev);
    prev = r.brams;
  }
}

TEST(ResourceModelTest, SixteenBitDoublesBufferPressure) {
  const FusedStage st = make_stage(64, 64, 128, 128, 4);
  const UnitConfig cfg{8, 8, 1};
  const auto r8 =
      unit_resources(st, cfg, nn::DataType::kInt8, nn::DataType::kInt8);
  const auto r16 =
      unit_resources(st, cfg, nn::DataType::kInt16, nn::DataType::kInt16);
  EXPECT_GT(r16.brams, r8.brams);
}

TEST(ResourceModelTest, SmallKernelsResident) {
  const FusedStage st = make_stage(16, 16, 512, 512, 4);  // 4k weights
  EXPECT_TRUE(weights_resident(st, nn::DataType::kInt8));
  const auto r = unit_resources(st, UnitConfig{4, 4, 1},
                                nn::DataType::kInt8, nn::DataType::kInt8);
  EXPECT_EQ(r.param_stream_bytes,
            st.bias_params * 1);  // only the bias streams
}

TEST(ResourceModelTest, FatKernelsStream) {
  const FusedStage st = make_stage(256, 768, 16, 16, 4);  // 3.1M weights
  EXPECT_FALSE(weights_resident(st, nn::DataType::kInt8));
  const auto r = unit_resources(st, UnitConfig{4, 4, 1},
                                nn::DataType::kInt8, nn::DataType::kInt8);
  EXPECT_EQ(r.param_stream_bytes, st.weight_params + st.bias_params);
}

TEST(ResourceModelTest, ResidencyThresholdConfigurable) {
  const FusedStage st = make_stage(64, 64, 32, 32, 4);  // 65k weights, 8-bit
  ResourceModelParams strict;
  strict.resident_weight_limit_brams = 1;
  ResourceModelParams loose;
  loose.resident_weight_limit_brams = 1000;
  EXPECT_FALSE(weights_resident(st, nn::DataType::kInt8, strict));
  EXPECT_TRUE(weights_resident(st, nn::DataType::kInt8, loose));
}

TEST(ResourceModelTest, UntiedBiasStreamsPerPixelBytes) {
  const FusedStage untied = make_stage(16, 16, 256, 256, 4, true);
  const FusedStage tied = make_stage(16, 16, 256, 256, 4, false);
  const UnitConfig cfg{4, 4, 1};
  const auto ru = unit_resources(untied, cfg, nn::DataType::kInt8,
                                 nn::DataType::kInt8);
  const auto rt =
      unit_resources(tied, cfg, nn::DataType::kInt8, nn::DataType::kInt8);
  EXPECT_EQ(ru.param_stream_bytes - rt.param_stream_bytes,
            256LL * 256 - 16);
}

TEST(ResourceModelTest, ExternalStreamsOnlyWhenFlagged) {
  const FusedStage st = make_stage(16, 16, 64, 64, 3);
  const UnitConfig cfg{4, 4, 1};
  const auto mid =
      unit_resources(st, cfg, nn::DataType::kInt8, nn::DataType::kInt8);
  UnitStreamContext head_ctx;
  head_ctx.reads_external_input = true;
  const auto head = unit_resources(st, cfg, nn::DataType::kInt8,
                                   nn::DataType::kInt8, head_ctx);
  UnitStreamContext tail_ctx;
  tail_ctx.writes_external_output = true;
  const auto tail = unit_resources(st, cfg, nn::DataType::kInt8,
                                   nn::DataType::kInt8, tail_ctx);
  EXPECT_EQ(mid.feature_stream_bytes, 0);
  EXPECT_EQ(head.feature_stream_bytes, 16LL * 64 * 64);
  EXPECT_EQ(tail.feature_stream_bytes, 16LL * 64 * 64);
}

TEST(ResourceModelTest, LineBufferScalesWithWidthAndChannels) {
  const FusedStage narrow = make_stage(16, 16, 64, 64, 4);
  const FusedStage wide = make_stage(16, 16, 64, 1024, 4);
  const FusedStage deep = make_stage(768, 16, 64, 64, 4);
  const UnitConfig cfg{1, 1, 1};
  const auto rn =
      unit_resources(narrow, cfg, nn::DataType::kInt8, nn::DataType::kInt8);
  const auto rw =
      unit_resources(wide, cfg, nn::DataType::kInt8, nn::DataType::kInt8);
  const auto rd =
      unit_resources(deep, cfg, nn::DataType::kInt8, nn::DataType::kInt8);
  EXPECT_GT(rw.brams, rn.brams);
  EXPECT_GT(rd.brams, rn.brams);
}

// Property sweep: DSPs are exactly ceil(lanes / packing) across configs.
class DspCountTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DspCountTest, MatchesClosedForm) {
  const auto [cpf, kpf, h] = GetParam();
  const FusedStage st = make_stage(64, 64, 128, 128, 3);
  const UnitConfig cfg{cpf, kpf, h};
  const auto r8 =
      unit_resources(st, cfg, nn::DataType::kInt8, nn::DataType::kInt8);
  const auto r16 =
      unit_resources(st, cfg, nn::DataType::kInt16, nn::DataType::kInt16);
  const std::int64_t lanes = cfg.lanes();
  EXPECT_EQ(r8.dsps, (lanes + 1) / 2);
  EXPECT_EQ(r16.dsps, lanes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DspCountTest,
    ::testing::Combine(::testing::Values(1, 3, 16), ::testing::Values(1, 8),
                       ::testing::Values(1, 2, 16)));

}  // namespace
}  // namespace fcad::arch
