// arch::Datapath: grammar, registry, packing accessors, and — the load-
// bearing part — cross-validation of the analytic latency/resource models
// against small brute-force goldens: a cycle-exact tile enumeration for
// every registered datapath, and closed-form resource counts per packing
// rule. The default pipelined-int8 datapath must stay bit-identical to the
// pre-datapath 2-arg overloads.
#include <gtest/gtest.h>

#include "arch/datapath.hpp"
#include "arch/elastic.hpp"
#include "arch/fusion.hpp"
#include "arch/platform.hpp"
#include "arch/resource_model.hpp"
#include "arch/unit.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "perf/analytical.hpp"
#include "perf/efficiency.hpp"

namespace fcad::arch {
namespace {

FusedStage make_stage(int in_ch, int out_ch, int h, int w, int kernel) {
  FusedStage st;
  st.kind = FusedStage::Kind::kConv;
  st.name = "stage";
  st.in_ch = in_ch;
  st.out_ch = out_ch;
  st.in_h = h;
  st.in_w = w;
  st.out_h = h;
  st.out_w = w;
  st.final_ch = out_ch;
  st.final_h = h;
  st.final_w = w;
  st.kernel = kernel;
  st.macs =
      static_cast<std::int64_t>(out_ch) * in_ch * h * w * kernel * kernel;
  st.ops = 2 * st.macs;
  st.weight_params =
      static_cast<std::int64_t>(out_ch) * in_ch * kernel * kernel;
  return st;
}

/// Cycle-exact schedule of one unit: walk every (output tile, row tile)
/// pass; a staged MAC chain fills once per pass, then each input tile
/// spends out_w * K * K cycles. This is the ground truth cycles_quantized
/// summarizes in closed form.
std::int64_t brute_force_cycles(const FusedStage& st, const UnitConfig& cfg,
                                const Datapath& dp) {
  std::int64_t cycles = 0;
  const auto fill = static_cast<std::int64_t>(dp.fill_cycles());
  for (int ko = 0; ko < st.out_ch; ko += cfg.kpf) {
    for (int ro = 0; ro < st.out_h; ro += cfg.h) {
      cycles += fill;
      for (int ci = 0; ci < st.in_ch; ci += cfg.cpf) {
        cycles +=
            static_cast<std::int64_t>(st.out_w) * st.kernel * st.kernel;
      }
    }
  }
  return cycles;
}

// ------------------------------------------------------------- grammar --
TEST(DatapathGrammarTest, RegistryHasAllEightCanonicalNames) {
  const std::vector<std::string> names = registered_datapath_names();
  const std::vector<std::string> expected = {
      "pipelined-int16", "pipelined-int8", "pipelined-int8x4",
      "pipelined-int4",  "staged-int16",   "staged-int8",
      "staged-int8x4",   "staged-int4"};
  EXPECT_EQ(names, expected);
  EXPECT_EQ(registered_datapaths().size(), 8u);
}

TEST(DatapathGrammarTest, RoundTripsEveryRegisteredDatapath) {
  for (const Datapath& dp : registered_datapaths()) {
    auto parsed = datapath_from_string(datapath_to_string(dp));
    ASSERT_TRUE(parsed.is_ok()) << datapath_to_string(dp);
    EXPECT_EQ(*parsed, dp);
  }
}

TEST(DatapathGrammarTest, RejectsUnknownNamesWithGrammarHint) {
  for (const char* bad :
       {"", "int8", "pipelined", "pipelined-fp32", "systolic-int8",
        "pipelined-int4x8", "staged_int8"}) {
    auto parsed = datapath_from_string(bad);
    ASSERT_FALSE(parsed.is_ok()) << bad;
    EXPECT_NE(parsed.status().message().find("unknown datapath"),
              std::string::npos);
    EXPECT_NE(parsed.status().message().find("<pipelined|staged>"),
              std::string::npos);
  }
}

TEST(DatapathGrammarTest, DefaultIsPipelinedInt8) {
  EXPECT_EQ(Datapath{}, datapath_from_quantization(nn::DataType::kInt8));
  EXPECT_EQ(datapath_to_string(Datapath{}), "pipelined-int8");
}

TEST(DatapathGrammarTest, DataTypeFromStringRoundTrips) {
  for (nn::DataType t :
       {nn::DataType::kInt4, nn::DataType::kInt8, nn::DataType::kInt16}) {
    auto parsed = nn::data_type_from_string(nn::to_string(t));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(nn::data_type_from_string("fp32").is_ok());
}

// ------------------------------------------------------------ accessors --
TEST(DatapathAccessorTest, DspPackingPerWeightWidth) {
  const auto dp = [](const char* name) {
    auto parsed = datapath_from_string(name);
    FCAD_CHECK(parsed.is_ok());
    return *parsed;
  };
  EXPECT_EQ(dp("pipelined-int8").multipliers_per_dsp(), 2);
  EXPECT_EQ(dp("pipelined-int16").multipliers_per_dsp(), 1);
  EXPECT_EQ(dp("pipelined-int4").multipliers_per_dsp(), 0);
  EXPECT_EQ(dp("pipelined-int8x4").multipliers_per_dsp(), 0);

  EXPECT_EQ(dp("pipelined-int8").beta_ops_per_dsp(), 4);
  EXPECT_EQ(dp("pipelined-int16").beta_ops_per_dsp(), 2);

  EXPECT_FALSE(dp("pipelined-int8").lut_multipliers());
  EXPECT_FALSE(dp("staged-int16").lut_multipliers());
  EXPECT_TRUE(dp("pipelined-int4").lut_multipliers());
  EXPECT_TRUE(dp("staged-int8x4").lut_multipliers());
  EXPECT_GT(dp("pipelined-int4").luts_per_multiplier(), 0);
  EXPECT_EQ(dp("pipelined-int8").luts_per_multiplier(), 0);
}

TEST(DatapathAccessorTest, FillCyclesOnlyForStagedMacs) {
  for (const Datapath& dp : registered_datapaths()) {
    if (dp.mac == MacStyle::kPipelined) {
      EXPECT_EQ(dp.fill_cycles(), 0.0) << datapath_to_string(dp);
    } else {
      EXPECT_GT(dp.fill_cycles(), 0.0) << datapath_to_string(dp);
      // Integral so the quantized and analytical fill terms agree exactly
      // at divisor configurations.
      EXPECT_EQ(dp.fill_cycles(),
                static_cast<double>(static_cast<std::int64_t>(
                    dp.fill_cycles())));
    }
  }
  // Wider weights mean a deeper chain.
  const Datapath s4{MacStyle::kStaged, nn::DataType::kInt4,
                    nn::DataType::kInt4};
  const Datapath s8{MacStyle::kStaged, nn::DataType::kInt8,
                    nn::DataType::kInt8};
  const Datapath s16{MacStyle::kStaged, nn::DataType::kInt16,
                     nn::DataType::kInt16};
  EXPECT_LT(s4.fill_cycles(), s8.fill_cycles());
  EXPECT_LT(s8.fill_cycles(), s16.fill_cycles());
}

TEST(DatapathAccessorTest, AccuracyProxyOrdersByPrecision) {
  const Datapath p16 = datapath_from_quantization(nn::DataType::kInt16);
  const Datapath p8 = datapath_from_quantization(nn::DataType::kInt8);
  const Datapath p8x4{MacStyle::kPipelined, nn::DataType::kInt8,
                      nn::DataType::kInt4};
  const Datapath p4 = datapath_from_quantization(nn::DataType::kInt4);
  EXPECT_EQ(p16.accuracy_proxy(), 0.0);
  EXPECT_LT(p16.accuracy_proxy(), p8.accuracy_proxy());
  EXPECT_LT(p8.accuracy_proxy(), p8x4.accuracy_proxy());
  EXPECT_LT(p8x4.accuracy_proxy(), p4.accuracy_proxy());
  // The MAC microarchitecture does not change the numerics of the result.
  for (const Datapath& dp : registered_datapaths()) {
    const Datapath flipped{dp.mac == MacStyle::kPipelined
                               ? MacStyle::kStaged
                               : MacStyle::kPipelined,
                           dp.dw, dp.ww};
    EXPECT_EQ(dp.accuracy_proxy(), flipped.accuracy_proxy());
  }
}

// -------------------------------------------------- latency vs brute force --
TEST(DatapathLatencyTest, QuantizedMatchesBruteForceEnumeration) {
  // Awkward (non-divisor-friendly) and round stages, all registered
  // datapaths, every feasible (cpf, kpf, h): the closed-form quantized
  // latency must equal the cycle-exact tile walk.
  for (const FusedStage& st :
       {make_stage(7, 3, 5, 4, 3), make_stage(8, 4, 6, 6, 2),
        make_stage(5, 5, 7, 3, 1)}) {
    for (const Datapath& dp : registered_datapaths()) {
      for (int cpf = 1; cpf <= st.in_ch; ++cpf) {
        for (int kpf = 1; kpf <= st.out_ch; ++kpf) {
          for (int h = 1; h <= st.out_h; ++h) {
            const UnitConfig cfg{cpf, kpf, h};
            EXPECT_EQ(cycles_quantized(st, cfg, dp),
                      brute_force_cycles(st, cfg, dp))
                << datapath_to_string(dp) << " " << cfg.to_string();
          }
        }
      }
    }
  }
}

TEST(DatapathLatencyTest, AnalyticalMatchesQuantizedOnDivisors) {
  const FusedStage st = make_stage(12, 6, 8, 8, 3);
  for (const Datapath& dp : registered_datapaths()) {
    for (const UnitConfig cfg :
         {UnitConfig{1, 1, 1}, UnitConfig{3, 2, 4}, UnitConfig{12, 6, 8}}) {
      EXPECT_DOUBLE_EQ(cycles_analytical(st, cfg, dp),
                       static_cast<double>(cycles_quantized(st, cfg, dp)))
          << datapath_to_string(dp) << " " << cfg.to_string();
    }
  }
}

TEST(DatapathLatencyTest, PipelinedIsBitIdenticalToLegacyOverloads) {
  const FusedStage st = make_stage(24, 36, 60, 60, 3);
  for (nn::DataType q :
       {nn::DataType::kInt4, nn::DataType::kInt8, nn::DataType::kInt16}) {
    const Datapath dp = datapath_from_quantization(q);
    for (std::int64_t target : {1, 5, 17, 100, 999}) {
      const UnitConfig cfg = get_pf(target, st);
      EXPECT_EQ(cycles_quantized(st, cfg, dp), cycles_quantized(st, cfg));
      EXPECT_EQ(cycles_analytical(st, cfg, dp), cycles_analytical(st, cfg));
    }
  }
}

TEST(DatapathLatencyTest, StagedIsStrictlySlowerAndFillMatchesEq4Overload) {
  const FusedStage st = make_stage(16, 8, 32, 32, 3);
  const UnitConfig cfg{4, 2, 4};
  for (const Datapath& dp : registered_datapaths()) {
    if (dp.mac != MacStyle::kStaged) continue;
    const Datapath pipelined{MacStyle::kPipelined, dp.dw, dp.ww};
    EXPECT_GT(cycles_quantized(st, cfg, dp),
              cycles_quantized(st, cfg, pipelined));
    // The standalone perf formula and the arch model agree on the fill.
    EXPECT_DOUBLE_EQ(
        cycles_analytical(st, cfg, dp),
        perf::latency_eq4_cycles_filled(st.out_ch, st.in_ch, st.in_h,
                                        st.in_w, st.kernel, cfg.cpf, cfg.kpf,
                                        cfg.h, dp.fill_cycles()));
  }
}

// ----------------------------------------------- resources vs closed form --
TEST(DatapathResourceTest, ComputePackingClosedForms) {
  const FusedStage st = make_stage(16, 8, 32, 32, 3);
  const UnitConfig cfg{8, 4, 2};  // 64 lanes
  const auto at = [&](const char* name) {
    auto dp = datapath_from_string(name);
    FCAD_CHECK(dp.is_ok());
    return unit_resources(st, cfg, *dp);
  };
  // int8: 2 multipliers per DSP48 -> ceil(64/2).
  EXPECT_EQ(at("pipelined-int8").dsps, 32);
  EXPECT_EQ(at("pipelined-int8").luts, 0);
  // int16: 1 multiplier per DSP48.
  EXPECT_EQ(at("pipelined-int16").dsps, 64);
  // 4-bit weights: LUT-fabric multipliers, zero DSPs.
  const Datapath int4 = datapath_from_quantization(nn::DataType::kInt4);
  EXPECT_EQ(at("pipelined-int4").dsps, 0);
  EXPECT_EQ(at("pipelined-int4").luts,
            static_cast<int>(cfg.lanes()) * int4.luts_per_multiplier());
  EXPECT_EQ(at("pipelined-int8x4").dsps, 0);
  EXPECT_GT(at("pipelined-int8x4").luts, 0);
  // The MAC style changes timing, never area.
  for (const Datapath& dp : registered_datapaths()) {
    const Datapath flipped{dp.mac == MacStyle::kPipelined
                               ? MacStyle::kStaged
                               : MacStyle::kPipelined,
                           dp.dw, dp.ww};
    const UnitResources a = unit_resources(st, cfg, dp);
    const UnitResources b = unit_resources(st, cfg, flipped);
    EXPECT_EQ(a.dsps, b.dsps);
    EXPECT_EQ(a.luts, b.luts);
    EXPECT_EQ(a.brams, b.brams);
    EXPECT_EQ(a.total_stream_bytes(), b.total_stream_bytes());
  }
}

TEST(DatapathResourceTest, BitPackedStreamBytes) {
  const FusedStage st = make_stage(16, 8, 32, 32, 3);
  const UnitConfig cfg{1, 1, 1};
  UnitStreamContext ctx;
  ctx.reads_external_input = true;
  const auto features = [&](nn::DataType dw) {
    return unit_resources(st, cfg, Datapath{MacStyle::kPipelined, dw, dw},
                          ctx)
        .feature_stream_bytes;
  };
  const std::int64_t elements =
      static_cast<std::int64_t>(st.in_ch) * st.in_h * st.in_w;
  // Bit-packing: int8 = 1 byte/element (the legacy count), int16 doubles
  // it, int4 halves it.
  EXPECT_EQ(features(nn::DataType::kInt8), elements);
  EXPECT_EQ(features(nn::DataType::kInt16), 2 * elements);
  EXPECT_EQ(features(nn::DataType::kInt4), (elements * 4 + 7) / 8);
}

TEST(DatapathResourceTest, DeprecatedDtypeOverloadIsPipelined) {
  const FusedStage st = make_stage(16, 8, 32, 32, 3);
  const UnitConfig cfg{8, 4, 2};
  for (nn::DataType q : {nn::DataType::kInt8, nn::DataType::kInt16}) {
    const UnitResources legacy = unit_resources(st, cfg, q, q);
    const UnitResources dp =
        unit_resources(st, cfg, datapath_from_quantization(q));
    EXPECT_EQ(legacy.dsps, dp.dsps);
    EXPECT_EQ(legacy.brams, dp.brams);
    EXPECT_EQ(legacy.param_stream_bytes, dp.param_stream_bytes);
    EXPECT_EQ(legacy.feature_stream_bytes, dp.feature_stream_bytes);
  }
}

// ----------------------------------------------------- whole-accelerator --
TEST(DatapathEvalTest, EvaluateSurfacesDatapathCosts) {
  auto model = reorganize(nn::zoo::avatar_decoder());
  ASSERT_TRUE(model.is_ok());
  AcceleratorConfig config;
  for (const BranchPipeline& br : model->branches) {
    BranchHardwareConfig hw;
    hw.batch = 1;
    for (int s : br.stages) {
      hw.units.push_back(get_pf(16, model->stage(s)));
    }
    config.branches.push_back(std::move(hw));
  }

  config.datapath = datapath_from_quantization(nn::DataType::kInt8);
  const AcceleratorEval int8 =
      evaluate(*model, config, EvalMode::kQuantized);
  EXPECT_GT(int8.dsps, 0);
  EXPECT_EQ(int8.luts, 0);
  EXPECT_DOUBLE_EQ(int8.accuracy_proxy, config.datapath.accuracy_proxy());

  config.datapath = datapath_from_quantization(nn::DataType::kInt4);
  const AcceleratorEval int4 =
      evaluate(*model, config, EvalMode::kQuantized);
  EXPECT_EQ(int4.dsps, 0);  // LUT-fabric multipliers
  EXPECT_GT(int4.luts, 0);
  EXPECT_GT(int4.accuracy_proxy, int8.accuracy_proxy);
  // Same parallelism, same quantized schedule: identical throughput at
  // equal MAC style.
  EXPECT_DOUBLE_EQ(int4.min_fps, int8.min_fps);

  config.datapath =
      Datapath{MacStyle::kStaged, nn::DataType::kInt8, nn::DataType::kInt8};
  const AcceleratorEval staged =
      evaluate(*model, config, EvalMode::kQuantized);
  EXPECT_LT(staged.min_fps, int8.min_fps);  // fill overhead costs cycles
  EXPECT_EQ(staged.dsps, int8.dsps);
}

TEST(DatapathEvalTest, PeakGopsBetaOverloadMatchesDtypeForm) {
  EXPECT_DOUBLE_EQ(perf::peak_gops(4, 100, 200.0),
                   perf::peak_gops(nn::DataType::kInt8, 100, 200.0));
  EXPECT_DOUBLE_EQ(perf::peak_gops(2, 100, 200.0),
                   perf::peak_gops(nn::DataType::kInt16, 100, 200.0));
  EXPECT_DOUBLE_EQ(
      perf::efficiency_eq3(10.0, 4, 100, 200.0),
      perf::efficiency_eq3(10.0, nn::DataType::kInt8, 100, 200.0));
}

}  // namespace
}  // namespace fcad::arch
