#include <gtest/gtest.h>

#include "arch/elastic.hpp"
#include "nn/zoo/avatar_decoder.hpp"

namespace fcad::arch {
namespace {

class ElasticTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto model = reorganize(nn::zoo::avatar_decoder());
    ASSERT_TRUE(model.is_ok());
    model_ = std::make_unique<ReorganizedModel>(std::move(model).value());
  }

  /// A structurally valid config: every owned stage at a modest divisor
  /// triple chosen via get_pf.
  AcceleratorConfig make_config(std::int64_t lanes_per_stage,
                                std::vector<int> batches) {
    AcceleratorConfig config;
    for (std::size_t b = 0; b < model_->branches.size(); ++b) {
      BranchHardwareConfig hw;
      hw.batch = batches[b];
      for (int s : model_->branches[b].stages) {
        hw.units.push_back(get_pf(lanes_per_stage, model_->stage(s)));
      }
      config.branches.push_back(std::move(hw));
    }
    return config;
  }

  std::unique_ptr<ReorganizedModel> model_;
};

TEST_F(ElasticTest, EvaluatePopulatesEveryBranch) {
  const auto config = make_config(64, {1, 1, 1});
  const AcceleratorEval eval =
      evaluate(*model_, config, EvalMode::kAnalytical);
  ASSERT_EQ(eval.branches.size(), 3u);
  for (const BranchEval& be : eval.branches) {
    EXPECT_GT(be.fps, 0);
    EXPECT_GT(be.dsps, 0);
    EXPECT_GT(be.brams, 0);
    EXPECT_GT(be.bottleneck_cycles, 0);
    EXPECT_GT(be.efficiency, 0);
  }
  EXPECT_EQ(eval.dsps,
            eval.branches[0].dsps + eval.branches[1].dsps +
                eval.branches[2].dsps);
}

TEST_F(ElasticTest, BatchReplicationScalesFpsAndResources) {
  const auto eval1 =
      evaluate(*model_, make_config(64, {1, 1, 1}), EvalMode::kAnalytical);
  const auto eval2 =
      evaluate(*model_, make_config(64, {2, 2, 2}), EvalMode::kAnalytical);
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_NEAR(eval2.branches[b].fps, 2 * eval1.branches[b].fps, 1e-6);
    EXPECT_EQ(eval2.branches[b].dsps, 2 * eval1.branches[b].dsps);
    EXPECT_EQ(eval2.branches[b].brams, 2 * eval1.branches[b].brams);
  }
}

TEST_F(ElasticTest, CrossBranchCapBindsWarpField) {
  // Give Br.3 huge parallelism but keep the shared stages (owned by Br.2)
  // slow: Br.3's FPS must not exceed the shared stages' production rate.
  AcceleratorConfig config = make_config(16, {1, 1, 1});
  auto& br3 = config.branches[2];
  for (std::size_t i = 0; i < br3.units.size(); ++i) {
    br3.units[i] =
        get_pf(4096, model_->stage(model_->branches[2].stages[i]));
  }
  const AcceleratorEval eval =
      evaluate(*model_, config, EvalMode::kAnalytical);

  // Producer rate of the slowest shared stage:
  double shared_rate = 1e300;
  for (int s : model_->shared_stages) {
    // shared stages are owned by Br.2 and configured with 16 lanes here;
    // find the stage eval inside Br.2.
    for (const StageEval& se : eval.branches[1].stages) {
      if (se.stage == s) {
        shared_rate = std::min(
            shared_rate, config.freq_mhz * 1e6 / se.cycles);
      }
    }
  }
  EXPECT_LE(eval.branches[2].fps, shared_rate + 1e-6);
}

TEST_F(ElasticTest, EfficiencyAtMostOneUnderQuantizedEval) {
  const auto eval =
      evaluate(*model_, make_config(128, {1, 2, 2}), EvalMode::kQuantized);
  for (const BranchEval& be : eval.branches) {
    EXPECT_LE(be.efficiency, 1.0 + 1e-9);
  }
  EXPECT_LE(eval.efficiency, 1.0 + 1e-9);
}

TEST_F(ElasticTest, MinFpsIsSlowestBranch) {
  const auto eval =
      evaluate(*model_, make_config(64, {1, 2, 2}), EvalMode::kAnalytical);
  double expected = 1e300;
  for (const BranchEval& be : eval.branches) {
    expected = std::min(expected, be.fps);
  }
  EXPECT_DOUBLE_EQ(eval.min_fps, expected);
}

TEST_F(ElasticTest, WithinBudgetCheck) {
  const auto eval =
      evaluate(*model_, make_config(16, {1, 1, 1}), EvalMode::kAnalytical);
  EXPECT_TRUE(eval.within(eval.dsps, eval.brams, eval.bw_gbps + 1));
  EXPECT_FALSE(eval.within(eval.dsps - 1, eval.brams, eval.bw_gbps + 1));
  EXPECT_FALSE(eval.within(eval.dsps, eval.brams - 1, eval.bw_gbps + 1));
  EXPECT_FALSE(eval.within(eval.dsps, eval.brams, 0.0));
}

TEST_F(ElasticTest, MoreLanesMoreFps) {
  const auto small =
      evaluate(*model_, make_config(16, {1, 1, 1}), EvalMode::kAnalytical);
  const auto big =
      evaluate(*model_, make_config(256, {1, 1, 1}), EvalMode::kAnalytical);
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_GT(big.branches[b].fps, small.branches[b].fps);
  }
  EXPECT_GT(big.dsps, small.dsps);
}

TEST_F(ElasticTest, ArityMismatchThrows) {
  AcceleratorConfig config = make_config(16, {1, 1, 1});
  config.branches.pop_back();
  EXPECT_THROW(evaluate(*model_, config, EvalMode::kAnalytical),
               InternalError);
}

TEST_F(ElasticTest, OversizedUnitConfigThrows) {
  AcceleratorConfig config = make_config(16, {1, 1, 1});
  config.branches[0].units[0].cpf = 100000;
  EXPECT_THROW(evaluate(*model_, config, EvalMode::kAnalytical),
               InternalError);
}

}  // namespace
}  // namespace fcad::arch
