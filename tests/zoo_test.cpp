#include <gtest/gtest.h>

#include "analysis/branches.hpp"
#include "analysis/profile.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "nn/zoo/classic_nets.hpp"

namespace fcad {
namespace {

using nn::TensorShape;

class AvatarDecoderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<nn::Graph>(nn::zoo::avatar_decoder());
    profile_ = analysis::profile_graph(*graph_);
    auto d = analysis::decompose(*graph_, profile_);
    ASSERT_TRUE(d.is_ok());
    branches_ = std::move(d).value();
  }

  std::unique_ptr<nn::Graph> graph_;
  analysis::GraphProfile profile_;
  analysis::BranchDecomposition branches_;
};

TEST_F(AvatarDecoderTest, ThreeBranchesWithTableIRoles) {
  ASSERT_EQ(branches_.branches.size(), 3u);
  EXPECT_EQ(branches_.branches[0].role, "geometry");
  EXPECT_EQ(branches_.branches[1].role, "texture");
  EXPECT_EQ(branches_.branches[2].role, "warp_field");
}

TEST_F(AvatarDecoderTest, TableIOutputShapes) {
  const auto& outs = graph_->output_ids();
  ASSERT_EQ(outs.size(), 3u);
  EXPECT_EQ(graph_->layer(outs[0]).out_shape, (TensorShape{3, 256, 256}));
  EXPECT_EQ(graph_->layer(outs[1]).out_shape, (TensorShape{3, 1024, 1024}));
  EXPECT_EQ(graph_->layer(outs[2]).out_shape, (TensorShape{2, 256, 256}));
}

TEST_F(AvatarDecoderTest, HeadlineDemandNearPaper) {
  // Paper: 13.6-18.1 GOP (Table I rows sum to 18.1), 7.2-9.1M parameters.
  const double gop = static_cast<double>(profile_.total_ops) * 1e-9;
  const double mparams = static_cast<double>(profile_.total_params) * 1e-6;
  EXPECT_GT(gop, 14.0);
  EXPECT_LT(gop, 20.0);
  EXPECT_GT(mparams, 6.0);
  EXPECT_LT(mparams, 9.5);
}

TEST_F(AvatarDecoderTest, BranchSharesMatchTableI) {
  // Attributed shares within a few points of the published distribution
  // (10.5 / 62.4 / 27.1 % GOP, 12.1 / 67.0 / 20.9 % params).
  std::int64_t total_ops = 0;
  std::int64_t total_params = 0;
  for (const auto& br : branches_.branches) {
    total_ops += br.ops_attributed;
    total_params += br.params_attributed;
  }
  const auto ops_share = [&](int b) {
    return 100.0 * branches_.branches[b].ops_attributed / total_ops;
  };
  const auto param_share = [&](int b) {
    return 100.0 * branches_.branches[b].params_attributed / total_params;
  };
  EXPECT_NEAR(ops_share(0), 10.5, 4.0);
  EXPECT_NEAR(ops_share(1), 62.4, 6.0);
  EXPECT_NEAR(ops_share(2), 27.1, 6.0);
  EXPECT_NEAR(param_share(0), 12.1, 4.0);
  EXPECT_NEAR(param_share(1), 67.0, 6.0);
  EXPECT_NEAR(param_share(2), 20.9, 6.0);
}

TEST_F(AvatarDecoderTest, Branch2DominatesComputation) {
  EXPECT_GT(branches_.branches[1].ops_attributed,
            branches_.branches[0].ops_attributed +
                branches_.branches[2].ops_attributed);
}

TEST_F(AvatarDecoderTest, SharedFrontEndExists) {
  // Br.2 and Br.3 share the concat + two CAU blocks; the latent input and
  // its reshape are additionally shared with Br.1.
  EXPECT_FALSE(branches_.shared.empty());
  for (nn::LayerId id : branches_.shared) {
    EXPECT_GE(branches_.users[static_cast<std::size_t>(id)].size(), 2u);
  }
  // The shared compute (the CAU convs) belongs to exactly Br.2 and Br.3.
  for (const nn::Layer& layer : graph_->layers()) {
    if (layer.name == "sh_l1_conv" || layer.name == "sh_l2_conv") {
      const auto& users = branches_.users[static_cast<std::size_t>(layer.id)];
      EXPECT_EQ(users, (std::vector<int>{1, 2})) << layer.name;
    }
  }
}

TEST_F(AvatarDecoderTest, Conv7HasSixteenInAndOutChannels) {
  // The layer Sec. III's Fig. 3 analysis singles out.
  bool found = false;
  for (const nn::Layer& layer : graph_->layers()) {
    if (layer.name == "br2_l7_conv") {
      found = true;
      EXPECT_EQ(graph_->layer(layer.inputs[0]).out_shape.ch, 16);
      EXPECT_EQ(layer.conv().out_ch, 16);
      EXPECT_EQ(layer.out_shape.h, 512);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AvatarDecoderTest, EveryConvIsCustomized) {
  for (const nn::Layer& layer : graph_->layers()) {
    if (layer.kind == nn::LayerKind::kConv2d) {
      EXPECT_TRUE(layer.conv().untied_bias) << layer.name;
      EXPECT_EQ(layer.conv().kernel, 4) << layer.name;
      EXPECT_EQ(layer.conv().stride, 1) << layer.name;
    }
  }
}

TEST_F(AvatarDecoderTest, PeakFeatureMapIsHd) {
  // Sec. III: intermediate feature maps up to 16x1024x1024.
  EXPECT_GE(profile_.peak_feature_elems, 3LL * 1024 * 1024);
}

TEST(MimicDecoderTest, SameTopologyTiedBias) {
  const nn::Graph real = nn::zoo::avatar_decoder();
  const nn::Graph mimic = nn::zoo::mimic_decoder();
  ASSERT_EQ(real.size(), mimic.size());
  for (std::size_t i = 0; i < real.size(); ++i) {
    EXPECT_EQ(real.layers()[i].kind, mimic.layers()[i].kind);
    EXPECT_EQ(real.layers()[i].out_shape, mimic.layers()[i].out_shape);
    if (mimic.layers()[i].kind == nn::LayerKind::kConv2d) {
      EXPECT_FALSE(mimic.layers()[i].conv().untied_bias);
    }
  }
}

TEST(MimicDecoderTest, SlightlyFewerParamsAndOps) {
  const auto real = analysis::profile_graph(nn::zoo::avatar_decoder());
  const auto mimic = analysis::profile_graph(nn::zoo::mimic_decoder());
  EXPECT_LT(mimic.total_params, real.total_params);
  EXPECT_LE(mimic.total_ops, real.total_ops);
  // "Highly similar structure": within a few percent of each other.
  EXPECT_GT(static_cast<double>(mimic.total_ops) / real.total_ops, 0.95);
}

TEST(ClassicNetsTest, OutputHeads) {
  for (const nn::Graph& g : nn::zoo::calibration_benchmarks()) {
    ASSERT_EQ(g.output_ids().size(), 1u) << g.name();
    const int out_ch = g.layer(g.output_ids()[0]).out_shape.ch;
    if (g.name() == "tiny_yolo") {
      EXPECT_EQ(out_ch, 125);
    } else {
      EXPECT_EQ(out_ch, 1000);
    }
  }
}

TEST(ClassicNetsTest, ExpectedScale) {
  // Sanity-pin each backbone's compute against its well-known magnitude
  // (2 ops/MAC): AlexNet ~1.4, ZFNet ~2.3, VGG16 ~31, Tiny-YOLO ~7 GOP.
  const struct {
    const char* name;
    double gop_lo, gop_hi;
  } expected[] = {{"alexnet", 1.0, 3.0},
                  {"zfnet", 1.5, 5.0},
                  {"vgg16", 25.0, 36.0},
                  {"tiny_yolo", 5.0, 9.0}};
  auto nets = nn::zoo::calibration_benchmarks();
  ASSERT_EQ(nets.size(), 4u);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const auto p = analysis::profile_graph(nets[i]);
    const double gop = static_cast<double>(p.total_ops) * 1e-9;
    EXPECT_EQ(nets[i].name(), expected[i].name);
    EXPECT_GT(gop, expected[i].gop_lo) << nets[i].name();
    EXPECT_LT(gop, expected[i].gop_hi) << nets[i].name();
  }
}

TEST(ClassicNetsTest, SingleBranchDecomposition) {
  for (nn::Graph& g : nn::zoo::calibration_benchmarks()) {
    const auto profile = analysis::profile_graph(g);
    auto d = analysis::decompose(g, profile);
    ASSERT_TRUE(d.is_ok());
    EXPECT_EQ(d->branches.size(), 1u);
    EXPECT_TRUE(d->shared.empty());
  }
}

}  // namespace
}  // namespace fcad
