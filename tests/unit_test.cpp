#include <gtest/gtest.h>

#include "arch/fusion.hpp"
#include "arch/unit.hpp"

namespace fcad::arch {
namespace {

FusedStage make_stage(int in_ch, int out_ch, int h, int w, int kernel) {
  FusedStage st;
  st.kind = FusedStage::Kind::kConv;
  st.name = "stage";
  st.in_ch = in_ch;
  st.out_ch = out_ch;
  st.in_h = h;
  st.in_w = w;
  st.out_h = h;
  st.out_w = w;
  st.final_ch = out_ch;
  st.final_h = h;
  st.final_w = w;
  st.kernel = kernel;
  st.macs = static_cast<std::int64_t>(out_ch) * in_ch * h * w * kernel * kernel;
  st.ops = 2 * st.macs;
  return st;
}

TEST(UnitConfigTest, LanesAndToString) {
  UnitConfig cfg{4, 8, 2};
  EXPECT_EQ(cfg.lanes(), 64);
  EXPECT_EQ(cfg.to_string(), "(cpf=4,kpf=8,h=2)");
}

TEST(UnitTest, FitsStage) {
  const FusedStage st = make_stage(16, 8, 32, 32, 3);
  EXPECT_TRUE(fits_stage({16, 8, 32}, st));
  EXPECT_FALSE(fits_stage({17, 8, 32}, st));
  EXPECT_FALSE(fits_stage({16, 9, 1}, st));
  EXPECT_FALSE(fits_stage({16, 8, 33}, st));
  EXPECT_FALSE(fits_stage({0, 1, 1}, st));
}

TEST(UnitTest, MaxLanesIs3dProduct) {
  const FusedStage st = make_stage(16, 8, 32, 32, 3);
  EXPECT_EQ(max_lanes(st), 16LL * 8 * 32);
}

TEST(GetPfTest, ReturnsDivisorTriples) {
  const FusedStage st = make_stage(24, 36, 60, 60, 3);
  for (std::int64_t target : {1, 5, 17, 100, 999}) {
    const UnitConfig cfg = get_pf(target, st);
    EXPECT_EQ(st.in_ch % cfg.cpf, 0);
    EXPECT_EQ(st.out_ch % cfg.kpf, 0);
    EXPECT_EQ(st.out_h % cfg.h, 0);
  }
}

TEST(GetPfTest, MeetsTargetWhenFeasible) {
  const FusedStage st = make_stage(64, 64, 128, 128, 4);
  for (std::int64_t target : {1, 2, 7, 64, 100, 1000, 4096}) {
    const UnitConfig cfg = get_pf(target, st);
    EXPECT_GE(cfg.lanes(), target);
    EXPECT_TRUE(fits_stage(cfg, st));
  }
}

TEST(GetPfTest, ClampsToMaxWhenTargetTooLarge) {
  const FusedStage st = make_stage(4, 4, 4, 4, 3);
  const UnitConfig cfg = get_pf(1'000'000, st);
  EXPECT_EQ(cfg.lanes(), max_lanes(st));
}

TEST(GetPfTest, MinimalOvershoot) {
  // Among feasible lane counts >= target, the chosen one is the smallest:
  // any divisor triple strictly between target and the result would be a
  // contradiction. Spot-check against exhaustive enumeration.
  const FusedStage st = make_stage(12, 10, 20, 20, 3);
  for (std::int64_t target = 1; target <= max_lanes(st); target += 37) {
    const UnitConfig cfg = get_pf(target, st);
    std::int64_t best = -1;
    for (int c = 1; c <= 12; ++c) {
      if (12 % c) continue;
      for (int k = 1; k <= 10; ++k) {
        if (10 % k) continue;
        for (int h = 1; h <= 20; ++h) {
          if (20 % h) continue;
          const std::int64_t lanes = static_cast<std::int64_t>(c) * k * h;
          if (lanes >= target && (best < 0 || lanes < best)) best = lanes;
        }
      }
    }
    EXPECT_EQ(cfg.lanes(), best) << "target " << target;
  }
}

TEST(GetPf2dTest, NoHPartition) {
  const FusedStage st = make_stage(16, 16, 512, 512, 4);
  for (std::int64_t target : {10, 100, 256, 10'000}) {
    const UnitConfig cfg = get_pf_2d(target, st);
    EXPECT_EQ(cfg.h, 1);
    EXPECT_LE(cfg.lanes(), 256);  // DNNBuilder cap: InCh x OutCh
  }
  // The 2D cap is exactly InCh * OutCh.
  EXPECT_EQ(get_pf_2d(1'000'000, st).lanes(), 256);
}

TEST(CyclesTest, AnalyticalMatchesQuantizedOnDivisors) {
  const FusedStage st = make_stage(64, 32, 128, 128, 4);
  for (const UnitConfig cfg :
       {UnitConfig{1, 1, 1}, UnitConfig{16, 8, 4}, UnitConfig{64, 32, 128}}) {
    EXPECT_DOUBLE_EQ(cycles_analytical(st, cfg),
                     static_cast<double>(cycles_quantized(st, cfg)));
  }
}

TEST(CyclesTest, QuantizedNeverFasterThanAnalytical) {
  const FusedStage st = make_stage(7, 3, 10, 10, 4);  // awkward dims
  for (int cpf = 1; cpf <= 7; ++cpf) {
    for (int kpf = 1; kpf <= 3; ++kpf) {
      for (int h = 1; h <= 10; ++h) {
        const UnitConfig cfg{cpf, kpf, h};
        EXPECT_GE(static_cast<double>(cycles_quantized(st, cfg)),
                  cycles_analytical(st, cfg) - 1e-9);
      }
    }
  }
}

TEST(CyclesTest, Eq4HandValue) {
  // Paper Fig. 5(c) example: 4x6x3 input, two 4x2x2 kernels, cpf=kpf=2,
  // H-partition 2 -> macs = 2*4*6*3*4 = 576, lanes = 8 -> 72 cycles.
  const FusedStage st = make_stage(4, 2, 6, 3, 2);
  EXPECT_EQ(st.macs, 576);
  EXPECT_DOUBLE_EQ(cycles_analytical(st, {2, 2, 2}), 72.0);
}

// Property sweep: doubling any single parallel factor halves the analytical
// latency (3D parallelism is multiplicative).
class ParallelismScalingTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelismScalingTest, DoublingFactorHalvesLatency) {
  const FusedStage st = make_stage(64, 64, 64, 64, 4);
  const int f = GetParam();
  const UnitConfig base{f, f, f};
  const double lat = cycles_analytical(st, base);
  EXPECT_DOUBLE_EQ(cycles_analytical(st, {2 * f, f, f}), lat / 2);
  EXPECT_DOUBLE_EQ(cycles_analytical(st, {f, 2 * f, f}), lat / 2);
  EXPECT_DOUBLE_EQ(cycles_analytical(st, {f, f, 2 * f}), lat / 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParallelismScalingTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace fcad::arch
