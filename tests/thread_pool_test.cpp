#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fcad::util {
namespace {

TEST(ThreadPoolTest, SizeCountsCallerAndClampsToOne) {
  EXPECT_EQ(ThreadPool(1).size(), 1);
  EXPECT_EQ(ThreadPool(4).size(), 4);
  EXPECT_EQ(ThreadPool(-3).size(),
            ThreadPool(0).size());  // both mean "all cores"
  EXPECT_GE(ThreadPool(0).size(), 1);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kN = 5000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](std::int64_t i) {
    counts[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingle) {
  ThreadPool pool(4);
  int runs = 0;
  pool.parallel_for(0, [&](std::int64_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  pool.parallel_for(1, [&](std::int64_t) { ++runs; });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPoolTest, ParallelMapKeepsIndexOrder) {
  ThreadPool pool(4);
  const std::vector<std::int64_t> squares =
      pool.parallel_map<std::int64_t>(257, [](std::int64_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 257u);
  for (std::int64_t i = 0; i < 257; ++i) {
    EXPECT_EQ(squares[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ThreadPoolTest, SerialPoolMatchesParallelPool) {
  ThreadPool serial(1);
  ThreadPool parallel(8);
  auto work = [](std::int64_t i) { return 3 * i + 1; };
  EXPECT_EQ(serial.parallel_map<std::int64_t>(100, work),
            parallel.parallel_map<std::int64_t>(100, work));
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::int64_t> sums(16, 0);
  pool.parallel_for(16, [&](std::int64_t outer) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    // The nested loop must complete inline on this thread (a worker cannot
    // wait on its own queue) and see all its writes immediately.
    std::int64_t sum = 0;
    pool.parallel_for(10, [&](std::int64_t inner) { sum += inner; });
    sums[static_cast<std::size_t>(outer)] = sum;
  });
  EXPECT_FALSE(ThreadPool::in_parallel_region());
  for (std::int64_t s : sums) EXPECT_EQ(s, 45);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::int64_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // The remaining indices still ran; only index 37 failed.
  EXPECT_EQ(completed.load(), 99);
}

TEST(ThreadPoolTest, SharedPoolResizesOnExplicitRequest) {
  EXPECT_EQ(ThreadPool::shared(3).size(), 3);
  EXPECT_EQ(ThreadPool::shared(0).size(), 3);  // 0 keeps the current size
  EXPECT_EQ(ThreadPool::shared(2).size(), 2);
  EXPECT_EQ(ThreadPool::shared(2).size(), 2);  // same request: no rebuild
}

TEST(ThreadPoolTest, ManySmallBatchesStress) {
  ThreadPool pool(8);
  std::int64_t total = 0;
  for (int round = 0; round < 200; ++round) {
    const std::vector<std::int64_t> parts = pool.parallel_map<std::int64_t>(
        round % 7 + 1, [&](std::int64_t i) { return i + round; });
    total = std::accumulate(parts.begin(), parts.end(), total);
  }
  // Deterministic accumulation: the reduce runs on the caller in order.
  std::int64_t expected = 0;
  for (int round = 0; round < 200; ++round) {
    for (std::int64_t i = 0; i < round % 7 + 1; ++i) expected += i + round;
  }
  EXPECT_EQ(total, expected);
}

}  // namespace
}  // namespace fcad::util
