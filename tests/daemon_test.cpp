#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serving/clock.hpp"
#include "serving/daemon.hpp"
#include "serving/fleet.hpp"
#include "serving/service.hpp"
#include "serving/stats.hpp"
#include "serving/workload.hpp"

namespace fcad::serving {
namespace {

Request make_request(std::int64_t id, int user, int branch, double arrival_us) {
  Request r;
  r.id = id;
  r.user = user;
  r.branch = branch;
  r.arrival_us = arrival_us;
  return r;
}

ServiceModel make_service(std::vector<BranchService> branches) {
  ServiceModel m;
  m.branches = std::move(branches);
  return m;
}

/// A mixed-user trace with two branches, moderately loaded.
std::vector<Request> make_trace(int n, double spacing_us = 400.0) {
  std::vector<Request> trace;
  trace.reserve(n);
  for (int i = 0; i < n; ++i) {
    trace.push_back(make_request(i, i % 5, i % 2, i * spacing_us));
  }
  return trace;
}

// ------------------------------------------------------------------ parity --
TEST(DaemonTest, RunTraceMatchesSimulateFleetBitExactly) {
  // The headline contract: the same trace through the daemon's online
  // submit path (admission off) and through simulate_fleet must produce
  // identical per-request decisions and latencies — across shard counts
  // and dispatch policies.
  const ServiceModel service = make_service({{2, 3000.0}, {2, 5000.0}});
  const std::vector<Request> trace = make_trace(200);

  for (int shards : {1, 2, 4}) {
    for (DispatchPolicy policy :
         {DispatchPolicy::kRoundRobin, DispatchPolicy::kLeastLoaded,
          DispatchPolicy::kBranchAffinity}) {
      ServeSpec spec;
      spec.fleet.instances = 4;
      spec.fleet.shards = shards;
      spec.fleet.policy = policy;
      spec.fleet.keep_records = true;

      auto reference = simulate_fleet(service, trace, spec);
      ASSERT_TRUE(reference.is_ok());

      const Daemon daemon(service, spec);
      auto live = daemon.run_trace(trace);
      ASSERT_TRUE(live.is_ok());
      EXPECT_EQ(live->shed, 0);

      EXPECT_EQ(serving_csv_row({}, *reference),
                serving_csv_row({}, live->stats));
      ASSERT_EQ(reference->records.size(), live->stats.records.size());
      for (std::size_t i = 0; i < reference->records.size(); ++i) {
        const RequestRecord& a = reference->records[i];
        const RequestRecord& b = live->stats.records[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.user, b.user);
        EXPECT_EQ(a.branch, b.branch);
        EXPECT_EQ(a.instance, b.instance);
        EXPECT_EQ(a.arrival_us, b.arrival_us);
        EXPECT_EQ(a.start_us, b.start_us);    // bit-identical doubles
        EXPECT_EQ(a.finish_us, b.finish_us);  // bit-identical doubles
      }
    }
  }
}

TEST(DaemonTest, RunTraceIsDeterministicAcrossThreadCounts) {
  const ServiceModel service = make_service({{2, 3000.0}, {1, 4000.0}});
  const std::vector<Request> trace = make_trace(300);

  ServeSpec spec;
  spec.fleet.instances = 4;
  spec.fleet.shards = 4;
  spec.fleet.keep_records = true;

  const Daemon daemon(service, spec, {.admission_enabled = true});
  spec.fleet.threads = 1;
  const Daemon single(service, spec, {.admission_enabled = true});
  auto a = single.run_trace(trace);
  spec.fleet.threads = 4;
  const Daemon pooled(service, spec, {.admission_enabled = true});
  auto b = pooled.run_trace(trace);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a->shed, b->shed);
  EXPECT_EQ(serving_csv_row({}, a->stats), serving_csv_row({}, b->stats));
}

// --------------------------------------------------------------- admission --
TEST(DaemonTest, AdmissionShedsUnderOverloadAndBalancesTheBooks) {
  // One slow instance (8 ms per pass), arrivals every 2 ms: the backlog —
  // and with it every completion latency — grows without bound. Shedding
  // starts only once `admission_window` completions have landed, so the
  // arrival rate must stay close enough to the service rate for the window
  // to fill mid-trace; after that the rolling p99 is far above the bound
  // and the daemon refuses the rest of the trace.
  const ServiceModel service = make_service({{1, 8000.0}});
  std::vector<Request> trace;
  for (int i = 0; i < 400; ++i) {
    trace.push_back(make_request(i, 0, 0, i * 2000.0));
  }

  ServeSpec spec;
  spec.fleet.instances = 1;
  spec.sla.p99_bound_us = 10000;

  DaemonOptions options;
  options.admission_enabled = true;
  options.admission_window = 8;

  const Daemon daemon(service, spec, options);
  auto result = daemon.run_trace(trace);
  ASSERT_TRUE(result.is_ok());
  EXPECT_GT(result->shed, 0);
  // Shed requests never enter the engine: admitted + shed must cover the
  // trace exactly, and stats are over admitted requests only.
  EXPECT_EQ(result->stats.completed + result->shed,
            static_cast<std::int64_t>(trace.size()));
  EXPECT_EQ(result->stats.offered, result->stats.completed);
}

TEST(DaemonTest, AdmissionOffNeverSheds) {
  const ServiceModel service = make_service({{1, 8000.0}});
  std::vector<Request> trace;
  for (int i = 0; i < 100; ++i) {
    trace.push_back(make_request(i, 0, 0, i * 100.0));
  }
  ServeSpec spec;
  spec.fleet.instances = 1;
  spec.sla.p99_bound_us = 10000;
  const Daemon daemon(service, spec);  // admission disabled by default
  auto result = daemon.run_trace(trace);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->shed, 0);
  EXPECT_EQ(result->stats.completed, static_cast<std::int64_t>(trace.size()));
}

// -------------------------------------------------------------- validation --
TEST(DaemonTest, ServeRequiresSteadyClockAndSocketPath) {
  const ServiceModel service = make_service({{1, 2000.0}});
  {
    ServeSpec spec;  // kVirtual by default
    DaemonOptions options;
    options.socket_path = "/tmp/fcad_daemon_invalid.sock";
    Daemon daemon(service, spec, options);
    auto result = daemon.serve();
    ASSERT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ServeSpec spec;
    spec.clock = ClockKind::kSteady;
    Daemon daemon(service, spec);  // no socket path
    auto result = daemon.serve();
    ASSERT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

// ------------------------------------------------------------- live socket --
/// Connects to the daemon's socket, retrying while it boots.
int connect_with_retry(const std::string& path) {
  SteadyClock clock(0.0);
  for (int attempt = 0; attempt < 500; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    clock.sleep_until_us(clock.now_us() + 10000.0);  // 10 ms
  }
  return -1;
}

/// Sends `text` fully.
bool send_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n = ::write(fd, text.data() + sent, text.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until `lines` newline-terminated replies arrived or EOF.
std::vector<std::string> read_lines(int fd, int lines) {
  std::string buffer;
  int seen = 0;
  char chunk[512];
  while (seen < lines) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    for (ssize_t i = 0; i < n; ++i) {
      if (chunk[i] == '\n') ++seen;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  std::vector<std::string> out;
  std::istringstream stream(buffer);
  std::string line;
  while (std::getline(stream, line)) out.push_back(line);
  return out;
}

TEST(DaemonTest, ServeAnswersRequestsAndDrainsOnShutdown) {
  const ServiceModel service = make_service({{2, 1000.0}, {2, 1500.0}});
  const std::string socket_path = "/tmp/fcad_daemon_test.sock";

  ServeSpec spec;
  spec.clock = ClockKind::kSteady;
  spec.fleet.instances = 2;
  spec.fleet.batch_timeout_us = 1000;

  DaemonOptions options;
  options.socket_path = socket_path;

  Daemon daemon(service, spec, options);
  StatusOr<DaemonResult> result = Status::internal("serve never ran");
  std::thread server([&] { result = daemon.serve(); });

  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0) << "could not connect to " << socket_path;

  constexpr int kRequests = 20;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += "req " + std::to_string(i % 3) + " " + std::to_string(i % 2) +
             "\n";
  }
  ASSERT_TRUE(send_all(fd, burst));

  const std::vector<std::string> replies = read_lines(fd, kRequests);
  ASSERT_EQ(replies.size(), static_cast<std::size_t>(kRequests));
  for (const std::string& line : replies) {
    // Every admitted request gets "ok <id> <branch> <instance> <latency>".
    std::istringstream fields(line);
    std::string verb;
    std::int64_t id = -1;
    int branch = -1, instance = -1;
    double latency = -1;
    fields >> verb >> id >> branch >> instance >> latency;
    EXPECT_EQ(verb, "ok") << line;
    EXPECT_GE(id, 0);
    EXPECT_TRUE(branch == 0 || branch == 1) << line;
    EXPECT_TRUE(instance == 0 || instance == 1) << line;
    EXPECT_GT(latency, 0) << line;
  }

  // Graceful shutdown via the signal-safe path; the drain must answer
  // everything already admitted (it did — we read all replies) and return
  // a consistent session.
  daemon.request_shutdown();
  server.join();
  ::close(fd);

  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->stats.completed, kRequests);
  EXPECT_EQ(result->stats.offered, kRequests);
  EXPECT_EQ(result->shed, 0);
  EXPECT_GT(result->stats.latency.p99, 0);
}

TEST(DaemonTest, ServeRejectsMalformedAndOutOfRangeLines) {
  const ServiceModel service = make_service({{1, 1000.0}});
  const std::string socket_path = "/tmp/fcad_daemon_err_test.sock";

  ServeSpec spec;
  spec.clock = ClockKind::kSteady;
  spec.fleet.instances = 1;
  spec.fleet.batch_timeout_us = 500;

  DaemonOptions options;
  options.socket_path = socket_path;

  Daemon daemon(service, spec, options);
  StatusOr<DaemonResult> result = Status::internal("serve never ran");
  std::thread server([&] { result = daemon.serve(); });

  const int fd = connect_with_retry(socket_path);
  ASSERT_GE(fd, 0);

  ASSERT_TRUE(send_all(fd, "bogus line\nreq 0 99\nreq 0 0\n"));
  const std::vector<std::string> replies = read_lines(fd, 3);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0].rfind("err ", 0), 0u) << replies[0];
  EXPECT_EQ(replies[1].rfind("err ", 0), 0u) << replies[1];
  EXPECT_EQ(replies[2].rfind("ok ", 0), 0u) << replies[2];

  ASSERT_TRUE(send_all(fd, "shutdown\n"));
  server.join();
  ::close(fd);

  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->stats.completed, 1);  // only the well-formed request
}

}  // namespace
}  // namespace fcad::serving
