#include <gtest/gtest.h>

#include "arch/platform.hpp"
#include "dse/strategies.hpp"
#include "nn/zoo/avatar_decoder.hpp"

namespace fcad::dse {
namespace {

const arch::ReorganizedModel& decoder_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(m.is_ok());
    return std::move(m).value();
  }();
  return model;
}

Customization decoder_customization() {
  Customization c;
  c.quantization = nn::DataType::kInt8;
  c.batch_sizes = {1, 2, 2};
  c.priorities = {1, 1, 1};
  return c;
}

CrossBranchOptions fast_options(std::uint64_t seed = 21) {
  CrossBranchOptions opt;
  opt.population = 25;
  opt.iterations = 5;
  opt.seed = seed;
  return opt;
}

class StrategyTest : public ::testing::TestWithParam<SearchStrategy> {};

TEST_P(StrategyTest, FindsFeasibleDesign) {
  const SearchResult result = strategy_search(
      decoder_model(),
      ResourceBudget::from_platform(arch::platform_zu9cg()),
      decoder_customization(), fast_options(), GetParam());
  EXPECT_TRUE(result.feasible) << to_string(GetParam());
  EXPECT_GT(result.eval.min_fps, 5.0);
  EXPECT_LE(result.eval.dsps, 2520);
  EXPECT_LE(result.eval.brams, 1824);
}

TEST_P(StrategyTest, TraceMonotoneAndComplete) {
  const SearchResult result = strategy_search(
      decoder_model(),
      ResourceBudget::from_platform(arch::platform_zu9cg()),
      decoder_customization(), fast_options(), GetParam());
  ASSERT_EQ(result.trace.best_fitness.size(), 5u);
  for (std::size_t i = 1; i < result.trace.best_fitness.size(); ++i) {
    EXPECT_GE(result.trace.best_fitness[i], result.trace.best_fitness[i - 1]);
  }
  EXPECT_GT(result.trace.evaluations, 0);
}

TEST_P(StrategyTest, Deterministic) {
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  const SearchResult a =
      strategy_search(decoder_model(), budget, decoder_customization(),
                      fast_options(5), GetParam());
  const SearchResult b =
      strategy_search(decoder_model(), budget, decoder_customization(),
                      fast_options(5), GetParam());
  EXPECT_DOUBLE_EQ(a.fitness, b.fitness);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values(SearchStrategy::kParticleSwarm,
                                           SearchStrategy::kRandom,
                                           SearchStrategy::kAnnealing),
                         [](const auto& info) {
                           switch (info.param) {
                             case SearchStrategy::kParticleSwarm:
                               return "ParticleSwarm";
                             case SearchStrategy::kRandom: return "Random";
                             case SearchStrategy::kAnnealing:
                               return "Annealing";
                           }
                           return "Unknown";
                         });

TEST(StrategyComparisonTest, SwarmAtLeastMatchesRandom) {
  // Under the same evaluation budget and seed family, the guided searches
  // should not lose to blind sampling by a meaningful margin.
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  const double swarm =
      strategy_search(decoder_model(), budget, decoder_customization(),
                      fast_options(), SearchStrategy::kParticleSwarm)
          .fitness;
  const double random =
      strategy_search(decoder_model(), budget, decoder_customization(),
                      fast_options(), SearchStrategy::kRandom)
          .fitness;
  EXPECT_GE(swarm, random * 0.98);
}

TEST(StrategyTest, EvaluateDistributionSharesObjective) {
  // evaluate_distribution on the swarm winner's rd reproduces its fitness.
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  CrossBranchOptions opt = fast_options();
  opt.freq_mhz = 200.0;
  const SearchResult result =
      strategy_search(decoder_model(), budget, decoder_customization(), opt,
                      SearchStrategy::kParticleSwarm);
  SearchTrace trace;
  const DistributionEval ce = evaluate_distribution(
      decoder_model(), budget, result.distribution, decoder_customization(),
      opt, trace);
  EXPECT_DOUBLE_EQ(ce.fitness, result.fitness);
}

TEST(StrategyTest, Names) {
  EXPECT_STREQ(to_string(SearchStrategy::kRandom), "random sampling");
  EXPECT_STREQ(to_string(SearchStrategy::kAnnealing), "simulated annealing");
}

}  // namespace
}  // namespace fcad::dse
