// The pluggable strategy layer: every registered strategy runs under the
// shared round loop (same budget, same objective, same evaluation path),
// finds feasible designs, reports a complete monotone trace, and is
// deterministic for a fixed seed. Plus the registry contract itself:
// lookup, unknown names, custom registration reachable from SearchSpec.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "arch/platform.hpp"
#include "dse/search_driver.hpp"
#include "dse/strategy.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "util/rng.hpp"

namespace fcad::dse {
namespace {

const arch::ReorganizedModel& decoder_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(m.is_ok());
    return std::move(m).value();
  }();
  return model;
}

Customization decoder_customization() {
  Customization c;
  c.quantization = nn::DataType::kInt8;
  c.batch_sizes = {1, 2, 2};
  c.priorities = {1, 1, 1};
  return c;
}

CrossBranchOptions fast_options(std::uint64_t seed = 21) {
  CrossBranchOptions opt;
  opt.population = 25;
  opt.iterations = 5;
  opt.seed = seed;
  opt.freq_mhz = 200.0;
  return opt;
}

SearchResult run_named(const std::string& name,
                       const CrossBranchOptions& opt) {
  auto result = run_search_strategy(
      name, decoder_model(),
      ResourceBudget::from_platform(arch::platform_zu9cg()),
      decoder_customization(), opt);
  FCAD_CHECK_MSG(result.is_ok(), result.status().message());
  return std::move(result).value();
}

class StrategyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(StrategyTest, FindsFeasibleDesign) {
  const SearchResult result = run_named(GetParam(), fast_options());
  EXPECT_TRUE(result.feasible) << GetParam();
  EXPECT_GT(result.eval.min_fps, 5.0);
  EXPECT_LE(result.eval.dsps, 2520);
  EXPECT_LE(result.eval.brams, 1824);
}

TEST_P(StrategyTest, TraceMonotoneAndComplete) {
  const SearchResult result = run_named(GetParam(), fast_options());
  ASSERT_EQ(result.trace.best_fitness.size(), 5u);
  for (std::size_t i = 1; i < result.trace.best_fitness.size(); ++i) {
    EXPECT_GE(result.trace.best_fitness[i], result.trace.best_fitness[i - 1]);
  }
  EXPECT_GT(result.trace.evaluations, 0);
}

TEST_P(StrategyTest, Deterministic) {
  const SearchResult a = run_named(GetParam(), fast_options(5));
  const SearchResult b = run_named(GetParam(), fast_options(5));
  EXPECT_DOUBLE_EQ(a.fitness, b.fitness);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values("particle-swarm", "random",
                                           "annealing"),
                         [](const auto& info) {
                           std::string name = info.param;
                           name.erase(std::remove(name.begin(), name.end(),
                                                  '-'),
                                      name.end());
                           return name;
                         });

TEST(StrategyComparisonTest, SwarmAtLeastMatchesRandom) {
  // Under the same evaluation budget and seed family, the guided searches
  // should not lose to blind sampling by a meaningful margin.
  const double swarm = run_named("particle-swarm", fast_options()).fitness;
  const double random = run_named("random", fast_options()).fitness;
  EXPECT_GE(swarm, random * 0.98);
}

TEST(StrategyTest, EvaluateDistributionSharesObjective) {
  // evaluate_distribution on the swarm winner's rd reproduces its fitness.
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  const CrossBranchOptions opt = fast_options();
  const SearchResult result = run_named("particle-swarm", opt);
  SearchTrace trace;
  const DistributionEval ce = evaluate_distribution(
      decoder_model(), budget, result.distribution, decoder_customization(),
      opt, trace);
  EXPECT_DOUBLE_EQ(ce.fitness, result.fitness);
}

TEST(StrategyTest, CrossBranchSearchIsTheParticleSwarmStrategy) {
  // Algorithm 1's classic entry point and the registered strategy are the
  // same code path, bit for bit.
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  const SearchResult classic = cross_branch_search(
      decoder_model(), budget, decoder_customization(), fast_options());
  const SearchResult registered = run_named("particle-swarm", fast_options());
  EXPECT_EQ(classic.fitness, registered.fitness);
  EXPECT_EQ(classic.trace.best_fitness, registered.trace.best_fitness);
  EXPECT_EQ(classic.distribution.c_frac, registered.distribution.c_frac);
}

// ---------------------------------------------------------------- registry --

TEST(StrategyRegistryTest, BuiltinsRegistered) {
  const std::vector<std::string> names = registered_strategy_names();
  for (const char* expected : {"particle-swarm", "random", "annealing"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(StrategyRegistryTest, UnknownNameRejectedWithKnownNamesListed) {
  auto factory = strategy_factory("no-such-strategy");
  ASSERT_FALSE(factory.is_ok());
  EXPECT_EQ(factory.status().code(), StatusCode::kNotFound);
  EXPECT_NE(factory.status().message().find("particle-swarm"),
            std::string::npos);
}

TEST(StrategyRegistryTest, EmptyNameResolvesToDefault) {
  EXPECT_TRUE(strategy_factory("").is_ok());
}

TEST(StrategyRegistryTest, DuplicateRegistrationRejected) {
  EXPECT_FALSE(register_strategy("particle-swarm", [] {
                 return std::unique_ptr<Strategy>();
               }).is_ok());
  EXPECT_FALSE(register_strategy("", [] {
                 return std::unique_ptr<Strategy>();
               }).is_ok());
}

/// A deliberately minimal custom strategy: one round of pure random
/// proposals. Registered once for the whole test binary.
class OneShotRandomStrategy : public Strategy {
 public:
  void begin(const StrategyContext& ctx) override {
    rng_ = Rng(ctx.options.seed);
  }
  int max_rounds(const StrategyContext&) const override { return 1; }
  std::vector<ResourceDistribution> propose(const StrategyContext& ctx,
                                            int) override {
    std::vector<ResourceDistribution> batch;
    for (int i = 0; i < ctx.options.population; ++i) {
      ResourceDistribution rd;
      const auto branches =
          static_cast<std::size_t>(ctx.model.num_branches());
      rd.c_frac = rng_.next_simplex(branches);
      rd.m_frac = rng_.next_simplex(branches);
      rd.bw_frac = rng_.next_simplex(branches);
      batch.push_back(std::move(rd));
    }
    return batch;
  }
  void accept(const StrategyContext&, int round,
              const std::vector<ResourceDistribution>& proposed,
              const std::vector<DistributionEval>& evals,
              SearchResult& result) override {
    for (std::size_t i = 0; i < proposed.size(); ++i) {
      if (evals[i].fitness > result.fitness) {
        result.fitness = evals[i].fitness;
        result.config = evals[i].config;
        result.eval = evals[i].eval;
        result.distribution = proposed[i];
        result.feasible = evals[i].feasible;
        result.trace.convergence_iteration = round + 1;
      }
    }
    result.trace.best_fitness.push_back(result.fitness);
  }

 private:
  Rng rng_{0};
};

TEST(StrategyRegistryTest, CustomStrategySelectableFromSearchSpec) {
  static const bool registered = [] {
    Status s = register_strategy("one-shot-random", [] {
      return std::make_unique<OneShotRandomStrategy>();
    });
    FCAD_CHECK_MSG(s.is_ok(), s.message());
    return true;
  }();
  ASSERT_TRUE(registered);

  SearchSpec spec;
  spec.strategy = "one-shot-random";
  spec.customization = decoder_customization();
  spec.search = fast_options();
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  EXPECT_EQ(outcome->search.trace.best_fitness.size(), 1u);
  EXPECT_GT(outcome->search.trace.evaluations, 0);
  EXPECT_FALSE(outcome->search.config.branches.empty());
}

TEST(StrategyRegistryTest, UnknownStrategyInSpecRejectedByDriver) {
  SearchSpec spec;
  spec.strategy = "definitely-not-registered";
  spec.customization = decoder_customization();
  spec.search = fast_options();
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_FALSE(outcome.is_ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace fcad::dse
