// Generalized Pareto-frontier extraction (dse/frontier.hpp): term-pair
// frontiers over explicit candidate sets and over SearchOutcomes, the
// degenerate shapes (single point, all-dominated, infeasible), and
// equivalence with the sweep path's built-in (min FPS, DSPs) marking.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "arch/platform.hpp"
#include "dse/frontier.hpp"
#include "nn/zoo/avatar_decoder.hpp"

namespace fcad::dse {
namespace {

/// A hardware-ish candidate: throughput per branch, resource totals, and an
/// unmet-target count (0 = feasible).
ObjectiveInput candidate(std::vector<double> fps, int dsps, int unmet = 0) {
  ObjectiveInput input;
  input.fps = std::move(fps);
  input.priorities.assign(input.fps.size(), 1.0);
  input.unmet_targets = unmet;
  input.min_fps = input.fps.empty()
                      ? 0
                      : *std::min_element(input.fps.begin(), input.fps.end());
  input.dsps = dsps;
  return input;
}

/// A serving candidate for the (SLA, DSPs) pair.
ObjectiveInput serving_candidate(int users, double p99_us, int dsps) {
  ObjectiveInput input = candidate({30.0}, dsps);
  input.has_serving = true;
  input.users_served = users;
  input.p99_latency_us = p99_us;
  return input;
}

TEST(FrontierTest, ThroughputVersusFeasibility) {
  // a: fast but infeasible-by-2; b: slower, infeasible-by-1; c: slowest but
  // feasible. Under (throughput up, feasibility up — fewer unmet targets)
  // no candidate dominates another; the feasible-only rule then leaves c as
  // the single frontier point.
  const std::vector<ObjectiveInput> candidates = {
      candidate({100, 100}, 500, /*unmet=*/2),
      candidate({60, 60}, 500, /*unmet=*/1),
      candidate({30, 30}, 500, /*unmet=*/0),
  };
  const auto points = extract_frontier(candidates, Objective::throughput(),
                                       Objective::feasibility());
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].a, 200.0);  // sum fps * priority
  EXPECT_EQ(points[0].b, -2.0);   // -unmet
  EXPECT_FALSE(points[0].feasible);
  EXPECT_FALSE(points[0].on_frontier);  // infeasible never makes the frontier
  EXPECT_FALSE(points[1].on_frontier);
  EXPECT_TRUE(points[2].on_frontier);
}

TEST(FrontierTest, SlaVersusDsps) {
  // Four serving candidates: more users cost more DSPs (a genuine
  // trade-off), one config is strictly dominated, one misses the SLA hard.
  const SlaParams sla;
  const std::vector<ObjectiveInput> candidates = {
      serving_candidate(/*users=*/8, /*p99=*/20000, /*dsps=*/2000),
      serving_candidate(/*users=*/4, /*p99=*/15000, /*dsps=*/900),
      serving_candidate(/*users=*/4, /*p99=*/15000, /*dsps=*/1400),  // dom.
      serving_candidate(/*users=*/2, /*p99=*/10000, /*dsps=*/400),
  };
  const auto points = extract_frontier(candidates, Objective::users_served(),
                                       Objective::dsp_cost());
  ASSERT_EQ(points.size(), 4u);
  EXPECT_TRUE(points[0].on_frontier);   // most users
  EXPECT_TRUE(points[1].on_frontier);   // same users, fewer DSPs than [2]
  EXPECT_FALSE(points[2].on_frontier);  // dominated by [1] on DSPs
  EXPECT_TRUE(points[3].on_frontier);   // cheapest
  EXPECT_EQ(points[0].b, -2000.0);

  // The latency-headroom SLA term works as an axis too: the same frontier
  // machinery, different trade-off.
  const auto by_headroom = extract_frontier(
      candidates, Objective::latency_headroom(sla), Objective::dsp_cost());
  EXPECT_TRUE(by_headroom[3].on_frontier);  // best headroom, cheapest
  EXPECT_FALSE(by_headroom[2].on_frontier);
}

TEST(FrontierTest, DegenerateSinglePoint) {
  const std::vector<ObjectiveInput> one = {candidate({50}, 1000)};
  const auto points = extract_frontier(one, Objective::min_throughput(),
                                       Objective::dsp_cost());
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].on_frontier);

  // A single infeasible point: scored, never on the frontier.
  const std::vector<ObjectiveInput> bad = {candidate({50}, 1000, 1)};
  const auto none = extract_frontier(bad, Objective::min_throughput(),
                                     Objective::dsp_cost());
  ASSERT_EQ(none.size(), 1u);
  EXPECT_FALSE(none[0].on_frontier);
  EXPECT_TRUE(extract_frontier(std::vector<ObjectiveInput>{},
                               Objective::min_throughput(),
                               Objective::dsp_cost())
                  .empty());
}

TEST(FrontierTest, AllDominatedByOnePoint) {
  // One candidate beats everything on both axes: the frontier is exactly it.
  const std::vector<ObjectiveInput> candidates = {
      candidate({100}, 500),  // dominates all below
      candidate({90}, 600),
      candidate({50}, 700),
      candidate({10}, 800),
  };
  const auto points = extract_frontier(candidates, Objective::min_throughput(),
                                       Objective::dsp_cost());
  EXPECT_TRUE(points[0].on_frontier);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_FALSE(points[i].on_frontier) << i;
  }
}

TEST(FrontierTest, DuplicatePointsShareTheFrontier) {
  // Two identical candidates: neither strictly dominates the other, so both
  // stay on the frontier (matching the sweep path's historical behavior).
  const std::vector<ObjectiveInput> candidates = {
      candidate({50}, 500),
      candidate({50}, 500),
  };
  const auto points = extract_frontier(candidates, Objective::min_throughput(),
                                       Objective::dsp_cost());
  EXPECT_TRUE(points[0].on_frontier);
  EXPECT_TRUE(points[1].on_frontier);
}

TEST(FrontierTest, TermWeightsNeverChangeTheFrontier) {
  const std::vector<ObjectiveInput> candidates = {
      candidate({100}, 800),
      candidate({50}, 400),
      candidate({40}, 600),  // dominated by [1]
  };
  Objective::Term heavy_a = Objective::min_throughput();
  heavy_a.weight = 1000.0;
  Objective::Term heavy_b = Objective::dsp_cost();
  heavy_b.weight = 0.001;
  const auto unweighted = extract_frontier(
      candidates, Objective::min_throughput(), Objective::dsp_cost());
  const auto weighted = extract_frontier(candidates, heavy_a, heavy_b);
  ASSERT_EQ(unweighted.size(), weighted.size());
  for (std::size_t i = 0; i < unweighted.size(); ++i) {
    EXPECT_EQ(unweighted[i].on_frontier, weighted[i].on_frontier) << i;
  }
  EXPECT_EQ(weighted[0].a, 1000.0 * 100.0);
}

TEST(FrontierTest, SweepOutcomeMatchesBuiltInParetoMarking) {
  // End to end: the sweep path marks pareto_optimal through the same
  // extraction, so re-extracting (min FPS, DSPs) from the outcome must
  // reproduce the flags — and another term pair is free to disagree.
  const auto model = arch::reorganize(nn::zoo::avatar_decoder());
  ASSERT_TRUE(model.is_ok());
  SearchSpec spec;
  spec.kind = SearchKind::kSweep;
  spec.search.population = 20;
  spec.search.iterations = 4;
  spec.search.seed = 17;
  spec.customization.batch_sizes = {1, 1, 1};
  auto outcome = SearchDriver(*model, arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());

  const auto points = extract_frontier(*outcome, Objective::min_throughput(),
                                       Objective::dsp_cost());
  ASSERT_EQ(points.size(), outcome->sweep.size());
  int on_frontier = 0;
  for (const FrontierPoint& point : points) {
    EXPECT_EQ(point.on_frontier,
              outcome->sweep[point.index].pareto_optimal)
        << point.index;
    EXPECT_EQ(point.a, outcome->sweep[point.index].result.eval.min_fps);
    on_frontier += point.on_frontier;
  }
  EXPECT_GE(on_frontier, 1);

  // A different pair over the same outcome: bandwidth instead of DSPs.
  const auto by_bw = extract_frontier(*outcome, Objective::min_throughput(),
                                      Objective::bandwidth_cost());
  EXPECT_EQ(by_bw.size(), points.size());
}

TEST(FrontierTest, NonSweepOutcomeYieldsItsWinner) {
  SearchOutcome outcome;
  outcome.kind = SearchKind::kOptimize;
  outcome.search.feasible = true;
  outcome.search.eval.min_fps = 42;
  outcome.search.eval.dsps = 777;
  const auto candidates = frontier_candidates(outcome);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].min_fps, 42);
  EXPECT_EQ(candidates[0].dsps, 777);
  const auto points = extract_frontier(outcome, Objective::min_throughput(),
                                       Objective::dsp_cost());
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].on_frontier);
}

}  // namespace
}  // namespace fcad::dse
