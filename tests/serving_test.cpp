#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "arch/platform.hpp"
#include "dse/search_driver.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "serving/batcher.hpp"
#include "serving/fleet.hpp"
#include "serving/service.hpp"
#include "serving/stats.hpp"
#include "serving/workload.hpp"

namespace fcad::serving {
namespace {

Request make_request(std::int64_t id, int branch, double arrival_us,
                     int user = 0) {
  Request r;
  r.id = id;
  r.user = user;
  r.branch = branch;
  r.arrival_us = arrival_us;
  return r;
}

ServiceModel make_service(std::vector<BranchService> branches) {
  ServiceModel m;
  m.branches = std::move(branches);
  return m;
}

/// ServeSpec wrapper for the FleetOptions-level tests below (the spec-level
/// SLA/clock resolution gets its own coverage in ServeSpecTest/clock_test).
StatusOr<ServingStats> run_fleet(const ServiceModel& service,
                                 const std::vector<Request>& workload,
                                 const FleetOptions& options,
                                 const util::RunScope* scope = nullptr) {
  ServeSpec spec;
  spec.fleet = options;
  return simulate_fleet(service, workload, spec, scope);
}

// --------------------------------------------------------------- workload --
TEST(WorkloadTest, PoissonIsDeterministicForAFixedSeed) {
  WorkloadOptions options;
  options.users = 4;
  options.branches = 3;
  options.frame_rate_hz = 30;
  options.duration_s = 2.0;
  options.seed = 99;
  auto a = generate_workload(options);
  auto b = generate_workload(options);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_EQ(a->size(), b->size());
  ASSERT_FALSE(a->empty());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].id, (*b)[i].id);
    EXPECT_EQ((*a)[i].user, (*b)[i].user);
    EXPECT_EQ((*a)[i].branch, (*b)[i].branch);
    EXPECT_EQ((*a)[i].arrival_us, (*b)[i].arrival_us);  // bit-identical
  }
}

TEST(WorkloadTest, DifferentSeedsProduceDifferentArrivals) {
  WorkloadOptions options;
  options.users = 2;
  options.duration_s = 1.0;
  options.seed = 1;
  auto a = generate_workload(options);
  options.seed = 2;
  auto b = generate_workload(options);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  ASSERT_FALSE(a->empty());
  bool any_differs = a->size() != b->size();
  for (std::size_t i = 0; !any_differs && i < a->size(); ++i) {
    any_differs = (*a)[i].arrival_us != (*b)[i].arrival_us;
  }
  EXPECT_TRUE(any_differs);
}

TEST(WorkloadTest, PoissonRateIsApproximatelyHonored) {
  WorkloadOptions options;
  options.users = 8;
  options.frame_rate_hz = 50;
  options.duration_s = 5.0;
  options.seed = 7;
  auto workload = generate_workload(options);
  ASSERT_TRUE(workload.is_ok());
  const double expected = 8 * 50 * 5.0;  // one branch per event
  EXPECT_GT(workload->size(), expected * 0.8);
  EXPECT_LT(workload->size(), expected * 1.2);
}

TEST(WorkloadTest, ArrivalsAreSortedWithDenseIds) {
  WorkloadOptions options;
  options.users = 3;
  options.branches = 2;
  options.duration_s = 1.0;
  auto workload = generate_workload(options);
  ASSERT_TRUE(workload.is_ok());
  for (std::size_t i = 0; i < workload->size(); ++i) {
    EXPECT_EQ((*workload)[i].id, static_cast<std::int64_t>(i));
    if (i > 0) {
      EXPECT_GE((*workload)[i].arrival_us, (*workload)[i - 1].arrival_us);
    }
  }
}

TEST(WorkloadTest, BurstyGeneratesWithinHorizon) {
  WorkloadOptions options;
  options.process = ArrivalProcess::kBursty;
  options.users = 4;
  options.frame_rate_hz = 30;
  options.duration_s = 2.0;
  options.seed = 5;
  auto workload = generate_workload(options);
  ASSERT_TRUE(workload.is_ok());
  ASSERT_FALSE(workload->empty());
  for (const Request& r : *workload) {
    EXPECT_LT(r.arrival_us, 2.0e6);
    EXPECT_GE(r.arrival_us, 0.0);
  }
}

TEST(WorkloadTest, TraceAssignsUsersRoundRobinAndExpandsBranches) {
  WorkloadOptions options;
  options.process = ArrivalProcess::kTrace;
  options.users = 2;
  options.branches = 2;
  options.trace_arrivals_us = {300, 100, 200};
  auto workload = generate_workload(options);
  ASSERT_TRUE(workload.is_ok());
  ASSERT_EQ(workload->size(), 6u);  // 3 events x 2 branches
  // Sorted events: 100 (user 0), 200 (user 1), 300 (user 0).
  EXPECT_EQ((*workload)[0].arrival_us, 100);
  EXPECT_EQ((*workload)[0].user, 0);
  EXPECT_EQ((*workload)[0].branch, 0);
  EXPECT_EQ((*workload)[1].branch, 1);
  EXPECT_EQ((*workload)[2].user, 1);
  EXPECT_EQ((*workload)[4].user, 0);
}

TEST(WorkloadTest, RejectsBadOptions) {
  WorkloadOptions options;
  options.users = 0;
  EXPECT_FALSE(generate_workload(options).is_ok());
  options.users = 1;
  options.frame_rate_hz = 0;
  EXPECT_FALSE(generate_workload(options).is_ok());
  options.frame_rate_hz = 30;
  options.process = ArrivalProcess::kTrace;
  EXPECT_FALSE(generate_workload(options).is_ok());  // empty trace
}

TEST(WorkloadTest, TargetRequestsGeneratesExactCount) {
  WorkloadOptions options;
  options.users = 6;
  options.branches = 3;
  options.frame_rate_hz = 30;
  options.duration_s = 0;  // ignored in target mode
  options.seed = 13;
  options.target_requests = 10000;
  auto workload = generate_workload(options);
  ASSERT_TRUE(workload.is_ok()) << workload.status().to_string();
  EXPECT_EQ(workload->size(), 10000u);
  for (std::size_t i = 0; i < workload->size(); ++i) {
    EXPECT_EQ((*workload)[i].id, static_cast<std::int64_t>(i));
    if (i > 0) {
      EXPECT_GE((*workload)[i].arrival_us, (*workload)[i - 1].arrival_us);
    }
  }
  // A second generation is bit-identical.
  auto again = generate_workload(options);
  ASSERT_TRUE(again.is_ok());
  ASSERT_EQ(again->size(), workload->size());
  for (std::size_t i = 0; i < workload->size(); ++i) {
    EXPECT_EQ((*again)[i].arrival_us, (*workload)[i].arrival_us);
    EXPECT_EQ((*again)[i].user, (*workload)[i].user);
  }
}

TEST(WorkloadTest, TargetRequestsMatchesDurationBoundedPrefix) {
  // The lazily merged per-user streams draw the same arrivals as the
  // duration-bounded generator — the target-mode trace is a prefix of the
  // duration-mode trace whenever the horizon covers it.
  WorkloadOptions bounded;
  bounded.users = 4;
  bounded.branches = 2;
  bounded.frame_rate_hz = 40;
  bounded.duration_s = 4.0;
  bounded.seed = 21;
  auto full = generate_workload(bounded);
  ASSERT_TRUE(full.is_ok());
  ASSERT_GT(full->size(), 400u);

  WorkloadOptions target = bounded;
  target.duration_s = 0;
  target.target_requests = 400;
  auto prefix = generate_workload(target);
  ASSERT_TRUE(prefix.is_ok());
  ASSERT_EQ(prefix->size(), 400u);
  for (std::size_t i = 0; i < prefix->size(); ++i) {
    EXPECT_EQ((*prefix)[i].arrival_us, (*full)[i].arrival_us) << i;
    EXPECT_EQ((*prefix)[i].user, (*full)[i].user) << i;
    EXPECT_EQ((*prefix)[i].branch, (*full)[i].branch) << i;
  }
  // Bursty streams go through the same lazy path.
  target.process = ArrivalProcess::kBursty;
  EXPECT_TRUE(generate_workload(target).is_ok());
}

TEST(WorkloadTest, TargetRequestsRejectsTraceAndNegatives) {
  WorkloadOptions options;
  options.target_requests = -1;
  EXPECT_FALSE(generate_workload(options).is_ok());
  options.target_requests = 10;
  options.process = ArrivalProcess::kTrace;
  options.trace_arrivals_us = {1, 2, 3};
  EXPECT_FALSE(generate_workload(options).is_ok());
}

TEST(WorkloadTest, ProcessNamesRoundTrip) {
  EXPECT_EQ(*arrival_process_by_name("Poisson"), ArrivalProcess::kPoisson);
  EXPECT_EQ(*arrival_process_by_name("bursty"), ArrivalProcess::kBursty);
  EXPECT_EQ(*arrival_process_by_name("TRACE"), ArrivalProcess::kTrace);
  EXPECT_FALSE(arrival_process_by_name("uniform").is_ok());
}

// ---------------------------------------------------------------- batcher --
TEST(BatcherTest, EmptyQueueIsNeverReady) {
  BatchAggregator agg({4}, 1000);
  EXPECT_FALSE(agg.has_ready(1e9));
  EXPECT_FALSE(agg.pop_ready(1e9).has_value());
  EXPECT_EQ(agg.next_deadline_us(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(agg.pending(), 0u);
}

TEST(BatcherTest, SingleRequestWaitsForTimeout) {
  BatchAggregator agg({4}, 1000);
  agg.enqueue(make_request(0, 0, 500));
  EXPECT_FALSE(agg.has_ready(500));
  EXPECT_FALSE(agg.has_ready(1499));
  EXPECT_EQ(agg.next_deadline_us(), 1500);
  ASSERT_TRUE(agg.has_ready(1500));
  auto batch = agg.pop_ready(1500);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->requests.size(), 1u);
  EXPECT_EQ(batch->branch, 0);
  EXPECT_EQ(agg.pending(), 0u);
}

TEST(BatcherTest, FullBatchIsReadyImmediately) {
  BatchAggregator agg({2}, 1e6);
  agg.enqueue(make_request(0, 0, 10));
  EXPECT_FALSE(agg.has_ready(10));
  agg.enqueue(make_request(1, 0, 11));
  EXPECT_TRUE(agg.has_ready(11));
}

TEST(BatcherTest, OverflowPopsAreCappedAndFifo) {
  BatchAggregator agg({2}, 1000);
  for (int i = 0; i < 5; ++i) {
    agg.enqueue(make_request(i, 0, static_cast<double>(i)));
  }
  auto first = agg.pop_ready(10);
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->requests.size(), 2u);
  EXPECT_EQ(first->requests[0].id, 0);
  EXPECT_EQ(first->requests[1].id, 1);
  auto second = agg.pop_ready(10);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->requests[0].id, 2);
  // Two popped batches leave one stranded request below the cap.
  EXPECT_EQ(agg.pending(), 1u);
  EXPECT_FALSE(agg.has_ready(10));
  EXPECT_TRUE(agg.has_ready(4 + 1000));
}

TEST(BatcherTest, CloseDrainsPartialBatches) {
  BatchAggregator agg({8}, 0);  // no timeout
  agg.enqueue(make_request(0, 0, 5));
  EXPECT_FALSE(agg.has_ready(1e12));
  agg.close();
  ASSERT_TRUE(agg.has_ready(6));
  EXPECT_EQ(agg.pop_ready(6)->requests.size(), 1u);
}

TEST(BatcherTest, ReadyTieBreaksTowardOldestHeadOfLine) {
  BatchAggregator agg({1, 1}, 1000);
  agg.enqueue(make_request(0, 1, 20));  // branch 1, older? no: arrives at 20
  agg.enqueue(make_request(1, 0, 10));  // branch 0 head is older
  EXPECT_EQ(agg.ready_branch(50), 0);
  auto batch = agg.pop_ready(50);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->branch, 0);
  EXPECT_EQ(agg.ready_branch(50), 1);
}

// ------------------------------------------------------------ percentiles --
TEST(StatsTest, NearestRankPercentilesAreExact) {
  const std::vector<double> decades = {10, 20, 30, 40, 50,
                                       60, 70, 80, 90, 100};
  EXPECT_EQ(percentile(decades, 50), 50);
  EXPECT_EQ(percentile(decades, 95), 100);
  EXPECT_EQ(percentile(decades, 99), 100);
  EXPECT_EQ(percentile(decades, 100), 100);
  EXPECT_EQ(percentile(decades, 10), 10);
  EXPECT_EQ(percentile(decades, 1), 10);
  EXPECT_EQ(percentile({42.0}, 99), 42.0);
  // Order of the input must not matter.
  EXPECT_EQ(percentile({9, 1, 5, 3, 7}, 60), 5);
}

TEST(StatsTest, PercentileValidationReturnsStatusInsteadOfCrashing) {
  EXPECT_TRUE(validate_percentile(0.001).is_ok());
  EXPECT_TRUE(validate_percentile(100).is_ok());
  EXPECT_FALSE(validate_percentile(0).is_ok());
  EXPECT_FALSE(validate_percentile(-5).is_ok());
  EXPECT_FALSE(validate_percentile(100.5).is_ok());

  auto ok = percentile_checked({1, 2, 3}, 50);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(*ok, 2);
  auto bad_pct = percentile_checked({1, 2, 3}, 101);
  ASSERT_FALSE(bad_pct.is_ok());
  EXPECT_EQ(bad_pct.status().code(), StatusCode::kInvalidArgument);
  auto empty = percentile_checked({}, 99);
  ASSERT_FALSE(empty.is_ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatsTest, TailTrackerMatchesExactPartialPercentiles) {
  // Deterministic pseudo-random stream; the tracker's partial estimate must
  // equal the exact nearest-rank percentile over every prefix it is asked
  // at, while holding only ~the top 1% of the stream.
  const std::int64_t total = 5000;
  TailTracker tracker(total, 99);
  std::vector<double> seen;
  std::uint64_t state = 12345;
  for (std::int64_t i = 0; i < total; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double sample = static_cast<double>(state >> 40);
    tracker.add(sample);
    seen.push_back(sample);
    if (i % 617 == 0 || i == total - 1) {
      EXPECT_EQ(tracker.partial(), percentile(seen, 99)) << "prefix " << i;
    }
  }
  EXPECT_EQ(tracker.seen(), total);

  // pct = 100 tracks the running maximum with a single-slot tail.
  TailTracker max_tracker(3, 100);
  max_tracker.add(2);
  max_tracker.add(9);
  max_tracker.add(4);
  EXPECT_EQ(max_tracker.partial(), 9);
}

TEST(StatsTest, ServingStatsSerializationRoundTripsBitExact) {
  // Build real stats (records kept) and round-trip them through the text
  // format; every field must survive bit-exactly and re-serialize to the
  // same text.
  WorkloadOptions wl;
  wl.users = 5;
  wl.branches = 2;
  wl.frame_rate_hz = 60;
  wl.duration_s = 1.0;
  wl.seed = 17;
  auto workload = generate_workload(wl);
  ASSERT_TRUE(workload.is_ok());
  FleetOptions options;
  options.instances = 3;
  options.keep_records = true;
  const ServiceModel service = make_service({{2, 4000.0}, {4, 6000.0}});
  auto stats = run_fleet(service, *workload, options);
  ASSERT_TRUE(stats.is_ok());
  ASSERT_FALSE(stats->records.empty());
  ASSERT_EQ(stats->branch_completed.size(), 2u);

  std::ostringstream os;
  serving_stats_to_text(os, *stats);
  const std::string text = os.str();
  std::istringstream in(text);
  auto restored = serving_stats_from_text(in);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();

  EXPECT_EQ(restored->offered, stats->offered);
  EXPECT_EQ(restored->completed, stats->completed);
  EXPECT_EQ(restored->makespan_us, stats->makespan_us);
  EXPECT_EQ(restored->throughput_rps, stats->throughput_rps);
  EXPECT_EQ(restored->latency.count, stats->latency.count);
  EXPECT_EQ(restored->latency.mean, stats->latency.mean);
  EXPECT_EQ(restored->latency.p50, stats->latency.p50);
  EXPECT_EQ(restored->latency.p95, stats->latency.p95);
  EXPECT_EQ(restored->latency.p99, stats->latency.p99);
  EXPECT_EQ(restored->latency.max, stats->latency.max);
  EXPECT_EQ(restored->queue_wait.p99, stats->queue_wait.p99);
  EXPECT_EQ(restored->batches, stats->batches);
  EXPECT_EQ(restored->mean_batch_fill, stats->mean_batch_fill);
  EXPECT_EQ(restored->mean_queue_depth, stats->mean_queue_depth);
  EXPECT_EQ(restored->max_queue_depth, stats->max_queue_depth);
  EXPECT_EQ(restored->sla_bound_us, stats->sla_bound_us);
  EXPECT_EQ(restored->sla_violations, stats->sla_violations);
  EXPECT_EQ(restored->sla_violation_rate, stats->sla_violation_rate);
  EXPECT_EQ(restored->sla_met, stats->sla_met);
  EXPECT_EQ(restored->fleet_utilization, stats->fleet_utilization);
  EXPECT_EQ(restored->branch_completed, stats->branch_completed);
  ASSERT_EQ(restored->instances.size(), stats->instances.size());
  for (std::size_t i = 0; i < stats->instances.size(); ++i) {
    EXPECT_EQ(restored->instances[i].instance, stats->instances[i].instance);
    EXPECT_EQ(restored->instances[i].batches, stats->instances[i].batches);
    EXPECT_EQ(restored->instances[i].busy_us, stats->instances[i].busy_us);
    EXPECT_EQ(restored->instances[i].utilization,
              stats->instances[i].utilization);
  }
  ASSERT_EQ(restored->records.size(), stats->records.size());
  for (std::size_t i = 0; i < stats->records.size(); ++i) {
    EXPECT_EQ(restored->records[i].id, stats->records[i].id);
    EXPECT_EQ(restored->records[i].instance, stats->records[i].instance);
    EXPECT_EQ(restored->records[i].arrival_us, stats->records[i].arrival_us);
    EXPECT_EQ(restored->records[i].finish_us, stats->records[i].finish_us);
  }
  // The CSV row — the full deterministic field set — matches too, and
  // re-serializing reproduces the exact same text.
  EXPECT_EQ(serving_csv_row({}, *restored), serving_csv_row({}, *stats));
  std::ostringstream again;
  serving_stats_to_text(again, *restored);
  EXPECT_EQ(again.str(), text);
}

TEST(StatsTest, TornSerializedStatsAreRejected) {
  ServingStats stats;
  stats.offered = 10;
  stats.completed = 10;
  stats.branch_completed = {4, 6};
  stats.instances.resize(2);
  std::ostringstream os;
  serving_stats_to_text(os, stats);
  const std::string text = os.str();
  ASSERT_NE(text.find("serving_stats_end"), std::string::npos);

  // Missing end marker (torn tail write).
  {
    std::istringstream in(text.substr(0, text.size() - 18));
    EXPECT_FALSE(serving_stats_from_text(in).is_ok());
  }
  // Cut mid-instance-list: the counted block catches the short read.
  {
    std::istringstream in(text.substr(0, text.find("instance 0")));
    EXPECT_FALSE(serving_stats_from_text(in).is_ok());
  }
  // Wrong header.
  {
    std::istringstream in("not_stats\n" + text);
    EXPECT_FALSE(serving_stats_from_text(in).is_ok());
  }
  // Unknown field.
  {
    std::istringstream in("serving_stats\nbogus 1\nserving_stats_end\n");
    EXPECT_FALSE(serving_stats_from_text(in).is_ok());
  }
}

TEST(StatsTest, SummarizeComputesMeanMaxAndTails) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  const LatencySummary s = summarize(samples);
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.p50, 50);
  EXPECT_EQ(s.p95, 95);
  EXPECT_EQ(s.p99, 99);
  EXPECT_EQ(s.max, 100);
  EXPECT_EQ(summarize(std::vector<double>{}).count, 0);
}

// ------------------------------------------------------------------ fleet --
TEST(FleetTest, ConservesEveryRequest) {
  WorkloadOptions wl;
  wl.users = 6;
  wl.branches = 2;
  wl.frame_rate_hz = 60;
  wl.duration_s = 1.0;
  wl.seed = 3;
  auto workload = generate_workload(wl);
  ASSERT_TRUE(workload.is_ok());

  FleetOptions options;
  options.instances = 2;
  options.batch_timeout_us = 2000;
  const ServiceModel service =
      make_service({{2, 4000.0}, {4, 6000.0}});
  auto stats = run_fleet(service, *workload, options);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats->offered, static_cast<std::int64_t>(workload->size()));
  EXPECT_EQ(stats->completed, stats->offered);
  EXPECT_GT(stats->throughput_rps, 0);
  EXPECT_GT(stats->makespan_us, 0);
}

TEST(FleetTest, StatsAreBitReproducible) {
  WorkloadOptions wl;
  wl.users = 4;
  wl.branches = 3;
  wl.duration_s = 1.0;
  wl.seed = 11;
  auto workload = generate_workload(wl);
  ASSERT_TRUE(workload.is_ok());
  FleetOptions options;
  options.instances = 3;
  options.policy = DispatchPolicy::kLeastLoaded;
  const ServiceModel service =
      make_service({{1, 2000.0}, {2, 5000.0}, {2, 3000.0}});
  auto a = run_fleet(service, *workload, options);
  auto b = run_fleet(service, *workload, options);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_EQ(serving_csv_row({}, *a), serving_csv_row({}, *b));
}

TEST(FleetTest, RunControlStreamsPartialPercentiles) {
  WorkloadOptions wl;
  wl.users = 6;
  wl.branches = 2;
  wl.frame_rate_hz = 60;
  wl.duration_s = 1.0;
  wl.seed = 3;
  auto workload = generate_workload(wl);
  ASSERT_TRUE(workload.is_ok());
  FleetOptions options;
  options.instances = 2;
  const ServiceModel service = make_service({{2, 4000.0}, {4, 6000.0}});

  util::RunControl control;
  std::vector<util::ProgressEvent> events;
  control.on_progress = [&](const util::ProgressEvent& event) {
    events.push_back(event);
  };
  const util::RunScope scope(control);
  auto observed = run_fleet(service, *workload, options, &scope);
  ASSERT_TRUE(observed.is_ok());

  ASSERT_GE(events.size(), 2u);
  for (const util::ProgressEvent& event : events) {
    EXPECT_EQ(event.stage, "fleet");
    EXPECT_GT(event.step, 0);
    EXPECT_EQ(event.total_steps,
              static_cast<int>(workload->size()));
    // The partial p99 estimate is a real latency, not a fitness.
    EXPECT_GT(event.best_fitness, 0);
  }
  // Steps are monotone and the final estimate converges on the true p99.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].step, events[i - 1].step);
  }
  EXPECT_DOUBLE_EQ(events.back().best_fitness, observed->latency.p99);

  // Observation never changes the stats.
  auto unobserved = run_fleet(service, *workload, options);
  ASSERT_TRUE(unobserved.is_ok());
  EXPECT_EQ(serving_csv_row({}, *observed), serving_csv_row({}, *unobserved));
}

TEST(FleetTest, RunControlCancelsAReplay) {
  WorkloadOptions wl;
  wl.users = 4;
  wl.branches = 2;
  wl.duration_s = 1.0;
  wl.seed = 11;
  auto workload = generate_workload(wl);
  ASSERT_TRUE(workload.is_ok());
  const ServiceModel service = make_service({{2, 4000.0}, {4, 6000.0}});

  // Pre-cancelled: the replay stops at its first checkpoint.
  util::RunControl control;
  control.cancel.request_cancel();
  const util::RunScope scope(control);
  auto stats = run_fleet(service, *workload, FleetOptions{}, &scope);
  ASSERT_FALSE(stats.is_ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCancelled);

  // Cancelling mid-replay from the progress callback also stops it.
  util::RunControl midway;
  int ticks = 0;
  midway.on_progress = [&](const util::ProgressEvent&) {
    if (++ticks >= 2) midway.cancel.request_cancel();
  };
  const util::RunScope mid_scope(midway);
  auto mid = run_fleet(service, *workload, FleetOptions{}, &mid_scope);
  ASSERT_FALSE(mid.is_ok());
  EXPECT_EQ(mid.status().code(), StatusCode::kCancelled);
  EXPECT_NE(mid.status().message().find("cancelled"), std::string::npos);
}

TEST(FleetTest, SingleRequestLatencyIsTimeoutPlusPass) {
  // Capacity 4 with one lone request: it waits out the batching timeout and
  // then runs alone.
  const ServiceModel service = make_service({{4, 5000.0}});
  FleetOptions options;
  options.instances = 1;
  options.batch_timeout_us = 1000;
  auto stats =
      run_fleet(service, {make_request(0, 0, 100)}, options);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_DOUBLE_EQ(stats->latency.max, 1000 + 5000);
  EXPECT_EQ(stats->batches, 1);
  EXPECT_DOUBLE_EQ(stats->mean_batch_fill, 0.25);
}

TEST(FleetTest, RoundRobinSpreadsSimultaneousBatches) {
  const ServiceModel service = make_service({{1, 1000.0}});
  FleetOptions options;
  options.instances = 4;
  options.policy = DispatchPolicy::kRoundRobin;
  std::vector<Request> workload;
  for (int i = 0; i < 8; ++i) workload.push_back(make_request(i, 0, 0));
  auto stats = run_fleet(service, workload, options);
  ASSERT_TRUE(stats.is_ok());
  for (const auto& inst : stats->instances) {
    EXPECT_EQ(inst.batches, 2) << "instance " << inst.instance;
  }
}

TEST(FleetTest, LeastLoadedBalancesBusyTime) {
  const ServiceModel service = make_service({{1, 1000.0}});
  FleetOptions options;
  options.instances = 2;
  options.policy = DispatchPolicy::kLeastLoaded;
  std::vector<Request> workload;
  for (int i = 0; i < 16; ++i) workload.push_back(make_request(i, 0, 0));
  auto stats = run_fleet(service, workload, options);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats->instances[0].batches, 8);
  EXPECT_EQ(stats->instances[1].batches, 8);
}

TEST(FleetTest, NoStarvationDispatchIsFifoPerBranch) {
  // Overload one instance and verify per-branch dispatch follows arrival
  // order — the oldest request can never be bypassed by a newer one.
  const ServiceModel service = make_service({{2, 3000.0}, {2, 3000.0}});
  FleetOptions options;
  options.instances = 1;
  options.batch_timeout_us = 500;
  options.keep_records = true;
  std::vector<Request> workload;
  for (int i = 0; i < 40; ++i) {
    workload.push_back(
        make_request(i, i % 2, 100.0 * i, /*user=*/i % 5));
  }
  auto stats = run_fleet(service, workload, options);
  ASSERT_TRUE(stats.is_ok());
  ASSERT_EQ(stats->records.size(), workload.size());
  // Records are appended in dispatch order; within a branch the FIFO queue
  // must preserve arrival (= id) order.
  std::int64_t last_id[2] = {-1, -1};
  for (const RequestRecord& rec : stats->records) {
    EXPECT_GT(rec.id, last_id[rec.branch]);
    last_id[rec.branch] = rec.id;
    EXPECT_GE(rec.start_us, rec.arrival_us);
    EXPECT_GT(rec.finish_us, rec.start_us);
  }
}

TEST(FleetTest, BranchAffinityAvoidsSwitchPenalties) {
  // Two alternating branches on three instances, spaced so every instance
  // is idle again before the next arrival: round-robin's modular cycling
  // keeps retargeting instances (3 does not divide 2), while affinity pins
  // each branch to the instance that last ran it.
  const ServiceModel service = make_service({{1, 1000.0}, {1, 1000.0}});
  std::vector<Request> workload;
  for (int i = 0; i < 30; ++i) {
    workload.push_back(make_request(i, i % 2, 1500.0 * i));
  }
  FleetOptions options;
  options.instances = 3;
  options.switch_penalty_us = 500;
  options.batch_timeout_us = 100;

  options.policy = DispatchPolicy::kBranchAffinity;
  auto affinity = run_fleet(service, workload, options);
  options.policy = DispatchPolicy::kRoundRobin;
  auto round_robin = run_fleet(service, workload, options);
  ASSERT_TRUE(affinity.is_ok() && round_robin.is_ok());

  auto total_switches = [](const ServingStats& s) {
    std::int64_t n = 0;
    for (const auto& inst : s.instances) n += inst.branch_switches;
    return n;
  };
  EXPECT_LT(total_switches(*affinity), total_switches(*round_robin));
  EXPECT_LE(affinity->latency.p99, round_robin->latency.p99);
}

TEST(FleetTest, DispatchDecisionsMatchPreHeapGoldens) {
  // Golden pin across the O(K)-scan -> heap/ordered-set dispatcher rewrite:
  // these constants were captured from the linear-scan implementation
  // (users 10, 3 branches, 25 Hz, 2 s, seed 77; service {2x4000, 1x2500,
  // 4x6000}; 4 instances, timeout 1500, switch penalty 300). The heap
  // dispatcher must reproduce every decision bit for bit — a mismatch means
  // the pick order changed, not a tolerable drift.
  WorkloadOptions wl;
  wl.users = 10;
  wl.branches = 3;
  wl.frame_rate_hz = 25;
  wl.duration_s = 2.0;
  wl.seed = 77;
  auto workload = generate_workload(wl);
  ASSERT_TRUE(workload.is_ok());
  ASSERT_EQ(workload->size(), 1473u);
  const ServiceModel service =
      make_service({{2, 4000.0}, {1, 2500.0}, {4, 6000.0}});

  struct Golden {
    DispatchPolicy policy;
    double p99, max, mean, wait_p99, fill, depth, makespan;
    std::int64_t batches, switches;
    int max_depth;
  };
  const std::vector<Golden> goldens = {
      {DispatchPolicy::kRoundRobin, 10330.283159261802, 13973.044393419084,
       5761.859252585723, 5093.1434313419741, 0.72879558948261236,
       1.0111572248102842, 2001586.5281865583, 1179, 858, 13},
      {DispatchPolicy::kLeastLoaded, 10110.165168074542, 13673.044393419084,
       5702.3474194867194, 5015.3863474554382, 0.72941426146010191,
       0.98737126748176918, 2001129.4778135957, 1178, 735, 12},
      {DispatchPolicy::kBranchAffinity, 10030.283159261802,
       13673.044393419084, 5641.3096825065304, 5015.3863474554382,
       0.72879558948261236, 0.97452422941809302, 2001129.4778135957, 1179,
       547, 12},
  };
  for (const Golden& golden : goldens) {
    FleetOptions options;
    options.instances = 4;
    options.policy = golden.policy;
    options.batch_timeout_us = 1500;
    options.switch_penalty_us = 300;
    options.sla_bound_us = 20000;
    auto stats = run_fleet(service, *workload, options);
    ASSERT_TRUE(stats.is_ok());
    const char* name = to_string(golden.policy);
    EXPECT_EQ(stats->latency.p99, golden.p99) << name;
    EXPECT_EQ(stats->latency.max, golden.max) << name;
    EXPECT_EQ(stats->latency.mean, golden.mean) << name;
    EXPECT_EQ(stats->queue_wait.p99, golden.wait_p99) << name;
    EXPECT_EQ(stats->mean_batch_fill, golden.fill) << name;
    EXPECT_EQ(stats->mean_queue_depth, golden.depth) << name;
    EXPECT_EQ(stats->makespan_us, golden.makespan) << name;
    EXPECT_EQ(stats->batches, golden.batches) << name;
    EXPECT_EQ(stats->max_queue_depth, golden.max_depth) << name;
    std::int64_t switches = 0;
    for (const auto& inst : stats->instances) switches += inst.branch_switches;
    EXPECT_EQ(switches, golden.switches) << name;
  }
}

TEST(FleetTest, ShardedReplayValidatesItsOptions) {
  const ServiceModel service = make_service({{1, 1000.0}});
  const std::vector<Request> workload = {make_request(0, 0, 0)};
  FleetOptions options;
  options.instances = 2;
  options.shards = 3;  // more shards than instances
  auto stats = run_fleet(service, workload, options);
  ASSERT_FALSE(stats.is_ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
  options.shards = 0;
  EXPECT_FALSE(run_fleet(service, workload, options).is_ok());
  // A malformed progress percentile is a clean error, not a CHECK crash.
  options.shards = 1;
  options.progress_tail_pct = 0;
  auto bad_pct = run_fleet(service, workload, options);
  ASSERT_FALSE(bad_pct.is_ok());
  EXPECT_EQ(bad_pct.status().code(), StatusCode::kInvalidArgument);
  options.progress_tail_pct = 101;
  EXPECT_FALSE(run_fleet(service, workload, options).is_ok());
}

TEST(FleetTest, ShardedReplayConservesAndReproduces) {
  WorkloadOptions wl;
  wl.users = 12;
  wl.branches = 2;
  wl.frame_rate_hz = 50;
  wl.duration_s = 1.5;
  wl.seed = 23;
  auto workload = generate_workload(wl);
  ASSERT_TRUE(workload.is_ok());
  const ServiceModel service = make_service({{2, 3000.0}, {4, 5000.0}});

  FleetOptions options;
  options.instances = 8;
  options.shards = 4;
  options.keep_records = true;
  auto a = run_fleet(service, *workload, options);
  auto b = run_fleet(service, *workload, options);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_EQ(a->offered, static_cast<std::int64_t>(workload->size()));
  EXPECT_EQ(a->completed, a->offered);
  EXPECT_EQ(a->instances.size(), 8u);
  EXPECT_EQ(serving_csv_row({}, *a), serving_csv_row({}, *b));
  ASSERT_EQ(a->records.size(), b->records.size());
  // Every user's requests stay inside their shard's instance slice (2
  // instances per shard, user u -> shard u mod 4).
  for (const RequestRecord& rec : a->records) {
    const int shard = rec.user % 4;
    EXPECT_GE(rec.instance, 2 * shard);
    EXPECT_LT(rec.instance, 2 * (shard + 1));
  }
  // Per-branch counters account for every request.
  std::int64_t branch_sum = 0;
  for (std::int64_t n : a->branch_completed) branch_sum += n;
  EXPECT_EQ(branch_sum, a->completed);
}

TEST(FleetTest, ShardedProgressEndsWithExactGlobalTail) {
  // A sharded run's in-loop ticks carry shard-local estimates; the terminal
  // tick must still be the exact tail percentile over ALL latencies — even
  // when the last in-loop tick lands exactly at completed == offered.
  WorkloadOptions wl;
  wl.users = 8;
  wl.branches = 2;
  wl.frame_rate_hz = 60;
  wl.duration_s = 1.0;
  wl.seed = 57;
  auto workload = generate_workload(wl);
  ASSERT_TRUE(workload.is_ok());
  const ServiceModel service = make_service({{2, 3000.0}, {4, 5000.0}});
  FleetOptions options;
  options.instances = 4;
  options.shards = 4;
  options.threads = 1;

  util::RunControl control;
  std::vector<util::ProgressEvent> events;
  control.on_progress = [&](const util::ProgressEvent& event) {
    events.push_back(event);
  };
  const util::RunScope scope(control);
  auto stats = run_fleet(service, *workload, options, &scope);
  ASSERT_TRUE(stats.is_ok());
  ASSERT_GE(events.size(), 2u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].step, events[i - 1].step);
  }
  EXPECT_EQ(events.back().step, static_cast<int>(stats->completed));
  EXPECT_DOUBLE_EQ(events.back().best_fitness, stats->latency.p99);
}

namespace {

/// Fresh per-test path for checkpoint files.
std::string checkpoint_path(const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) /
      ("fcad-fleet-" + name + ".ckpt");
  std::filesystem::remove(path);
  return path.string();
}

}  // namespace

TEST(FleetTest, CheckpointResumeMatchesUncancelledRun) {
  WorkloadOptions wl;
  wl.users = 8;
  wl.branches = 2;
  wl.frame_rate_hz = 60;
  wl.duration_s = 2.0;
  wl.seed = 31;
  auto workload = generate_workload(wl);
  ASSERT_TRUE(workload.is_ok());
  const ServiceModel service = make_service({{2, 3000.0}, {4, 5000.0}});

  FleetOptions options;
  options.instances = 4;
  options.shards = 4;
  options.threads = 1;  // sequential shards: cancel-at-50% leaves some done
  options.checkpoint_path = checkpoint_path("resume");

  // Reference: the uninterrupted run, no checkpoint involved.
  FleetOptions plain = options;
  plain.checkpoint_path.clear();
  auto reference = run_fleet(service, *workload, plain);
  ASSERT_TRUE(reference.is_ok());

  // Cancel mid-replay; finished shards persist in the checkpoint.
  util::RunControl control;
  const auto cancel_after =
      static_cast<std::int64_t>(workload->size()) / 2;
  control.on_progress = [&](const util::ProgressEvent& event) {
    if (event.step >= cancel_after) control.cancel.request_cancel();
  };
  {
    const util::RunScope scope(control);
    auto cancelled = run_fleet(service, *workload, options, &scope);
    ASSERT_FALSE(cancelled.is_ok());
    EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  }
  ASSERT_TRUE(std::filesystem::exists(options.checkpoint_path));

  // Resume: loaded shards are not re-simulated, and the merged stats are
  // bit-identical to the uninterrupted run.
  auto resumed = run_fleet(service, *workload, options);
  ASSERT_TRUE(resumed.is_ok());
  EXPECT_GT(resumed->resumed_shards, 0);
  EXPECT_LT(resumed->resumed_shards, 4);
  EXPECT_EQ(serving_csv_row({}, *resumed), serving_csv_row({}, *reference));
  EXPECT_EQ(resumed->latency.p99, reference->latency.p99);
  EXPECT_EQ(resumed->queue_wait.mean, reference->queue_wait.mean);
  EXPECT_EQ(resumed->branch_completed, reference->branch_completed);

  // A completed run leaves a full checkpoint behind: a rerun resumes every
  // shard without simulating anything.
  auto all_cached = run_fleet(service, *workload, options);
  ASSERT_TRUE(all_cached.is_ok());
  EXPECT_EQ(all_cached->resumed_shards, 4);
  EXPECT_EQ(serving_csv_row({}, *all_cached),
            serving_csv_row({}, *reference));
}

TEST(FleetTest, StaleOrTornCheckpointIsIgnored) {
  WorkloadOptions wl;
  wl.users = 4;
  wl.branches = 2;
  wl.duration_s = 0.5;
  wl.seed = 41;
  auto workload = generate_workload(wl);
  ASSERT_TRUE(workload.is_ok());
  const ServiceModel service = make_service({{2, 3000.0}, {4, 5000.0}});
  FleetOptions options;
  options.instances = 2;
  options.shards = 2;
  options.checkpoint_path = checkpoint_path("stale");

  // Garbage on disk: the replay restarts cleanly instead of misapplying it.
  {
    std::ofstream out(options.checkpoint_path);
    out << "not a checkpoint\n";
  }
  auto garbage = run_fleet(service, *workload, options);
  ASSERT_TRUE(garbage.is_ok());
  EXPECT_EQ(garbage->resumed_shards, 0);

  // That run rewrote a complete matching checkpoint: a rerun resumes it...
  auto full = run_fleet(service, *workload, options);
  ASSERT_TRUE(full.is_ok());
  EXPECT_EQ(full->resumed_shards, 2);

  // ...but a *different* replay (other switch penalty) must not — the
  // fingerprint catches the mismatch.
  FleetOptions other = options;
  other.switch_penalty_us = 123;
  auto mismatched = run_fleet(service, *workload, other);
  ASSERT_TRUE(mismatched.is_ok());
  EXPECT_EQ(mismatched->resumed_shards, 0);

  // Truncating a matching checkpoint also restarts instead of loading a
  // torn file (the original run rewrites it first, since the mismatched run
  // above replaced it with its own).
  ASSERT_TRUE(run_fleet(service, *workload, options).is_ok());
  std::error_code ec;
  const auto size = std::filesystem::file_size(options.checkpoint_path, ec);
  ASSERT_FALSE(ec);
  std::filesystem::resize_file(options.checkpoint_path, size / 2, ec);
  ASSERT_FALSE(ec);
  auto torn = run_fleet(service, *workload, options);
  ASSERT_TRUE(torn.is_ok());
  EXPECT_EQ(torn->resumed_shards, 0);
  EXPECT_EQ(serving_csv_row({}, *torn), serving_csv_row({}, *full));
}

TEST(FleetTest, SlaViolationsAreCounted) {
  const ServiceModel service = make_service({{1, 2000.0}});
  FleetOptions options;
  options.instances = 1;
  options.sla_bound_us = 2500;
  // Three back-to-back requests on one instance: latencies 2000, 4000, 6000.
  std::vector<Request> workload = {make_request(0, 0, 0),
                                   make_request(1, 0, 0),
                                   make_request(2, 0, 0)};
  auto stats = run_fleet(service, workload, options);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats->sla_violations, 2);
  EXPECT_NEAR(stats->sla_violation_rate, 2.0 / 3.0, 1e-12);
  EXPECT_FALSE(stats->sla_met);
}

TEST(FleetTest, PolicyNamesRoundTrip) {
  EXPECT_EQ(*dispatch_policy_by_name("rr"), DispatchPolicy::kRoundRobin);
  EXPECT_EQ(*dispatch_policy_by_name("Least-Loaded"),
            DispatchPolicy::kLeastLoaded);
  EXPECT_EQ(*dispatch_policy_by_name("affinity"),
            DispatchPolicy::kBranchAffinity);
  EXPECT_FALSE(dispatch_policy_by_name("random").is_ok());
}

// ---------------------------------------------------------- service model --
TEST(ServiceModelTest, PassTimeFollowsBatchOverFps) {
  arch::AcceleratorConfig config;
  config.branches.resize(2);
  config.branches[0].batch = 2;
  config.branches[1].batch = 4;
  arch::AcceleratorEval eval;
  eval.branches.resize(2);
  eval.branches[0].fps = 100;  // 2 frames per pass => 20 ms per pass
  eval.branches[1].fps = 400;  // 4 frames per pass => 10 ms per pass
  const ServiceModel model = service_model_from_eval(config, eval);
  ASSERT_EQ(model.num_branches(), 2);
  EXPECT_EQ(model.branches[0].capacity, 2);
  EXPECT_DOUBLE_EQ(model.branches[0].pass_us, 20000.0);
  EXPECT_DOUBLE_EQ(model.branches[1].pass_us, 10000.0);
  // Uniform mix: r/100 + r/400 = 1 per instance => r = 80 per branch.
  EXPECT_DOUBLE_EQ(model.peak_rps(), 160.0);
  EXPECT_EQ(model.capacities(), (std::vector<int>{2, 4}));
}

// ---------------------------------------------------------- SLA objective --
TEST(SlaFitnessTest, MoreUsersWinWithinTheBound) {
  dse::SlaParams params;
  params.p99_bound_us = 10000;
  EXPECT_GT(dse::sla_fitness_score(10, 9000, 0, params),
            dse::sla_fitness_score(8, 1000, 0, params));
}

TEST(SlaFitnessTest, MeetingTheBoundBeatsMissingIt) {
  dse::SlaParams params;
  params.p99_bound_us = 10000;
  EXPECT_GT(dse::sla_fitness_score(1, 9999, 0, params),
            dse::sla_fitness_score(100, 10001, 0.01, params));
}

TEST(SlaFitnessTest, LatencyBreaksTiesOnlyWithinSameUserCount) {
  dse::SlaParams params;
  params.p99_bound_us = 10000;
  EXPECT_GT(dse::sla_fitness_score(5, 2000, 0, params),
            dse::sla_fitness_score(5, 8000, 0, params));
  EXPECT_GT(dse::sla_fitness_score(6, 9999, 0, params),
            dse::sla_fitness_score(5, 1, 0, params));
}

// --------------------------------------------------------- traffic search --
TEST(TrafficSearchTest, FindsAConfigMeetingTheSla) {
  auto model = arch::reorganize(nn::zoo::avatar_decoder());
  ASSERT_TRUE(model.is_ok());

  dse::SearchSpec spec;
  spec.kind = dse::SearchKind::kTraffic;
  spec.search.population = 30;
  spec.search.iterations = 5;
  spec.search.seed = 7;
  spec.traffic.workload.users = 2;
  spec.traffic.workload.frame_rate_hz = 10;
  spec.traffic.workload.duration_s = 0.5;
  spec.traffic.workload.seed = 21;
  spec.traffic.fleet.instances = 2;
  spec.traffic.fleet.sla_bound_us = 250000;  // generous 250 ms bound
  spec.traffic.fleet.batch_timeout_us = 5000;
  spec.traffic.max_batch = 2;

  auto outcome = dse::SearchDriver(*model, arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  const dse::TrafficSearchResult& result = outcome->traffic;
  EXPECT_TRUE(result.sla_met);
  EXPECT_GE(result.users_served, 2);
  EXPECT_LE(result.stats.latency.p99, spec.traffic.fleet.sla_bound_us);
  EXPECT_EQ(result.batch_sizes.size(),
            static_cast<std::size_t>(model->num_branches()));
  EXPECT_GT(result.stats.completed, 0);
}

TEST(TrafficSearchTest, ScalesUsersUpToTheCap) {
  // A hand-built fast service model is not possible here (the search runs
  // the real DSE), so keep the search tiny and the SLA loose; the doubling
  // search should then push users past the starting point.
  auto model = arch::reorganize(nn::zoo::avatar_decoder());
  ASSERT_TRUE(model.is_ok());

  dse::SearchSpec spec;
  spec.kind = dse::SearchKind::kTraffic;
  spec.search.population = 20;
  spec.search.iterations = 4;
  spec.search.seed = 3;
  spec.traffic.workload.users = 1;
  spec.traffic.workload.frame_rate_hz = 5;
  spec.traffic.workload.duration_s = 0.5;
  spec.traffic.workload.seed = 9;
  spec.traffic.fleet.instances = 1;
  spec.traffic.fleet.sla_bound_us = 500000;
  spec.traffic.max_batch = 1;
  spec.traffic.max_users = 4;

  auto outcome = dse::SearchDriver(*model, arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  const dse::TrafficSearchResult& result = outcome->traffic;
  EXPECT_GE(result.users_served, 1);
  EXPECT_LE(result.users_served, 4);
  if (result.sla_met) {
    EXPECT_LE(result.stats.latency.p99, spec.traffic.fleet.sla_bound_us);
  }
}

TEST(TrafficSearchTest, CallerSetBranchesRejected) {
  // The legacy TrafficProfile silently overwrote workload.branches; the
  // TrafficSpec rejects it with a clear message instead.
  auto model = arch::reorganize(nn::zoo::avatar_decoder());
  ASSERT_TRUE(model.is_ok());

  dse::SearchSpec spec;
  spec.kind = dse::SearchKind::kTraffic;
  spec.search.population = 5;
  spec.search.iterations = 2;
  spec.traffic.workload.branches = 3;  // "helpfully" set by the caller
  auto outcome = dse::SearchDriver(*model, arch::platform_zu9cg()).run(spec);
  ASSERT_FALSE(outcome.is_ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(outcome.status().message().find("derived from the model"),
            std::string::npos);
}

TEST(TrafficSearchTest, ConflictingSlaBoundRejected) {
  auto model = arch::reorganize(nn::zoo::avatar_decoder());
  ASSERT_TRUE(model.is_ok());

  dse::SearchSpec spec;
  spec.kind = dse::SearchKind::kTraffic;
  spec.search.population = 5;
  spec.search.iterations = 2;
  spec.traffic.fleet.sla_bound_us = 250000;
  spec.traffic.sla.p99_bound_us = 100000;  // disagrees with the fleet bound
  auto outcome = dse::SearchDriver(*model, arch::platform_zu9cg()).run(spec);
  ASSERT_FALSE(outcome.is_ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(outcome.status().message().find("fleet.sla_bound_us"),
            std::string::npos);

  // Setting it equal to the fleet bound (or leaving the default) is fine.
  spec.traffic.sla.p99_bound_us = 250000;
  spec.traffic.workload.users = 1;
  spec.traffic.workload.frame_rate_hz = 5;
  spec.traffic.workload.duration_s = 0.25;
  EXPECT_TRUE(
      dse::SearchDriver(*model, arch::platform_zu9cg()).run(spec).is_ok());
}

// -------------------------------------------------------------- serve spec --
TEST(ServeSpecTest, SpecLevelSlaBoundResolvesIntoFleetOptions) {
  ServeSpec spec;
  spec.sla.p99_bound_us = 20000;
  auto resolved = resolved_fleet_options(spec);
  ASSERT_TRUE(resolved.is_ok());
  EXPECT_EQ(resolved->sla_bound_us, 20000);
}

TEST(ServeSpecTest, ConflictingSlaBoundsAreRejected) {
  ServeSpec spec;
  spec.sla.p99_bound_us = 20000;
  spec.fleet.sla_bound_us = 25000;  // disagrees with the spec-level bound
  auto resolved = resolved_fleet_options(spec);
  ASSERT_FALSE(resolved.is_ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kInvalidArgument);

  spec.fleet.sla_bound_us = 20000;  // agreeing redundantly is fine
  EXPECT_TRUE(resolved_fleet_options(spec).is_ok());
}

TEST(ServeSpecTest, ClockKindResolvesFromEitherLevel) {
  ServeSpec spec;
  spec.clock = ClockKind::kSteady;
  auto resolved = resolved_fleet_options(spec);
  ASSERT_TRUE(resolved.is_ok());
  EXPECT_EQ(resolved->clock, ClockKind::kSteady);

  ServeSpec fleet_side;
  fleet_side.fleet.clock = ClockKind::kSteady;
  auto from_fleet = resolved_fleet_options(fleet_side);
  ASSERT_TRUE(from_fleet.is_ok());
  EXPECT_EQ(from_fleet->clock, ClockKind::kSteady);
}

TEST(ServeSpecTest, SteadyClockReplayPacesTheTraceInRealTime) {
  // Wall mode is the live-pacing mode: the replay sleeps to each event's
  // trace timestamp, so recorded times carry genuine scheduler jitter and
  // are NOT expected to be bit-identical to the virtual run (only the
  // virtual clock is the reproducible mode). What must hold: every request
  // completes, the books balance, and no record dispatches before its
  // arrival or before the schedule allows.
  const ServiceModel service = make_service({{2, 3000.0}, {2, 5000.0}});
  std::vector<Request> workload;
  for (int i = 0; i < 40; ++i) {
    workload.push_back(make_request(i, i % 2, i * 500.0, i % 4));
  }

  ServeSpec steady;
  steady.fleet.instances = 2;
  steady.fleet.keep_records = true;
  steady.clock = ClockKind::kSteady;
  auto steady_run = simulate_fleet(service, workload, steady);
  ASSERT_TRUE(steady_run.is_ok());

  EXPECT_EQ(steady_run->completed,
            static_cast<std::int64_t>(workload.size()));
  EXPECT_EQ(steady_run->completed, steady_run->offered);
  ASSERT_EQ(steady_run->records.size(), workload.size());
  for (const RequestRecord& r : steady_run->records) {
    EXPECT_GE(r.start_us, r.arrival_us);
    EXPECT_GT(r.finish_us, r.start_us);
  }
  EXPECT_GT(steady_run->latency.p99, 0);
}

TEST(ServeSpecTest, BurstParametersValidatedForEveryProcess) {
  // Satellite of the elastic-serving PR: a zero burst phase used to be
  // silently ignored until the process flipped to kBursty — it is now
  // rejected at the spec boundary regardless of the selected process.
  WorkloadOptions options;
  options.process = ArrivalProcess::kPoisson;
  options.burst_off_s = 0;
  auto generated = generate_workload(options);
  ASSERT_FALSE(generated.is_ok());
  EXPECT_EQ(generated.status().code(), StatusCode::kInvalidArgument);

  options.burst_off_s = 0.2;
  options.burst_factor = -1;
  EXPECT_FALSE(validate_workload_options(options).is_ok());
  options.burst_factor = 2.0;
  options.burst_on_s = 0;
  EXPECT_FALSE(validate_workload_options(options).is_ok());
  options.burst_on_s = 0.2;
  EXPECT_TRUE(validate_workload_options(options).is_ok());
}

TEST(ServeSpecTest, TraceWithTargetRequestsRejected) {
  WorkloadOptions options;
  options.process = ArrivalProcess::kTrace;
  options.trace_arrivals_us = {0, 100, 200};
  options.target_requests = 10;
  auto generated = generate_workload(options);
  ASSERT_FALSE(generated.is_ok());
  EXPECT_EQ(generated.status().code(), StatusCode::kInvalidArgument);

  options.target_requests = 0;
  EXPECT_TRUE(generate_workload(options).is_ok());
}

}  // namespace
}  // namespace fcad::serving
