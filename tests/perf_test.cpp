#include <gtest/gtest.h>

#include "perf/analytical.hpp"
#include "perf/efficiency.hpp"
#include "util/status.hpp"

namespace fcad::perf {
namespace {

TEST(Eq4Test, HandComputedLatency) {
  // 16-in/16-out 512x512 K=4 layer (the decoder's Conv7) at cpf=kpf=16,
  // h=1: macs = 16*16*512*512*16 = 2^30 -> cycles = 2^30/256 = 4194304.
  EXPECT_DOUBLE_EQ(latency_eq4_cycles(16, 16, 512, 512, 4, 16, 16, 1),
                   4194304.0);
}

TEST(Eq4Test, SecondsAtFrequency) {
  // 4194304 cycles at 200 MHz = 20.97 ms.
  EXPECT_NEAR(latency_eq4_seconds(16, 16, 512, 512, 4, 16, 16, 1, 200.0),
              0.02097152, 1e-9);
}

TEST(Eq4Test, ParallelismIsMultiplicative) {
  const double base = latency_eq4_cycles(64, 32, 128, 128, 3, 1, 1, 1);
  EXPECT_DOUBLE_EQ(latency_eq4_cycles(64, 32, 128, 128, 3, 4, 2, 8),
                   base / 64.0);
}

TEST(Eq4Test, RejectsNonPositiveArguments) {
  EXPECT_THROW(latency_eq4_cycles(0, 1, 1, 1, 1, 1, 1, 1), InternalError);
  EXPECT_THROW(latency_eq4_cycles(1, 1, 1, 1, 1, 0, 1, 1), InternalError);
  EXPECT_THROW(latency_eq4_seconds(1, 1, 1, 1, 1, 1, 1, 1, 0), InternalError);
}

TEST(Eq5Test, BottleneckStageSetsThroughput) {
  // Stages of 1M / 4M / 2M cycles at 200 MHz, batch 1 -> 50 FPS.
  EXPECT_DOUBLE_EQ(fps_eq5(1, {1e6, 4e6, 2e6}, 200.0), 50.0);
}

TEST(Eq5Test, BatchMultiplies) {
  EXPECT_DOUBLE_EQ(fps_eq5(2, {4e6}, 200.0), 100.0);
  EXPECT_DOUBLE_EQ(fps_eq5(4, {4e6}, 200.0), 200.0);
}

TEST(Eq5Test, RejectsEmptyOrNonPositive) {
  EXPECT_THROW(fps_eq5(1, {}, 200.0), InternalError);
  EXPECT_THROW(fps_eq5(0, {1e6}, 200.0), InternalError);
  EXPECT_THROW(fps_eq5(1, {0.0}, 200.0), InternalError);
}

TEST(Eq3Test, PaperArithmeticDnnBuilderScheme1) {
  // Table II cross-check: 30.5 FPS x 13.1 GOP mimic on 644 DSPs, 8-bit,
  // 200 MHz -> 399.55/(4*644*0.2) = 77.6%; the paper rounds its decoder to
  // 13.76 GOP for exactly 81.6%. We verify our formula against the exact
  // arithmetic.
  const double gops = 30.5 * 13.1;
  EXPECT_NEAR(efficiency_eq3(gops, nn::DataType::kInt8, 644, 200.0), 0.7757,
              0.001);
}

TEST(Eq3Test, PaperArithmeticHybridDnnScheme1) {
  // 12.1 FPS x 13.1 GOP on 512 DSPs, 16-bit -> 77.4% (paper: 77.5%).
  const double gops = 12.1 * 13.1;
  EXPECT_NEAR(efficiency_eq3(gops, nn::DataType::kInt16, 512, 200.0), 0.774,
              0.002);
}

TEST(Eq3Test, PeakGops) {
  // 2520 DSPs at 200 MHz: 8-bit peak = 4*2520*0.2 = 2016 GOP/s.
  EXPECT_DOUBLE_EQ(peak_gops(nn::DataType::kInt8, 2520, 200.0), 2016.0);
  EXPECT_DOUBLE_EQ(peak_gops(nn::DataType::kInt16, 2520, 200.0), 1008.0);
}

TEST(Eq3Test, EfficiencyIsOneAtPeak) {
  const double peak = peak_gops(nn::DataType::kInt8, 100, 200.0);
  EXPECT_DOUBLE_EQ(efficiency_eq3(peak, nn::DataType::kInt8, 100, 200.0), 1.0);
}

TEST(Eq3Test, ZeroDspsGivesZeroEfficiency) {
  EXPECT_DOUBLE_EQ(efficiency_eq3(100.0, nn::DataType::kInt8, 0, 200.0), 0.0);
}

}  // namespace
}  // namespace fcad::perf
