#include <gtest/gtest.h>

#include "arch/platform.hpp"
#include "dse/cross_branch.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "sim/trace.hpp"

namespace fcad::sim {
namespace {

struct Fixture {
  arch::ReorganizedModel model;
  arch::AcceleratorConfig config;
  SimResult result;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    auto model = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(model.is_ok());
    dse::Customization cust;
    cust.batch_sizes = {1, 1, 1};
    cust.priorities = {1, 1, 1};
    dse::CrossBranchOptions opt;
    opt.population = 20;
    opt.iterations = 4;
    const auto search = dse::cross_branch_search(
        *model, dse::ResourceBudget::from_platform(arch::platform_zu9cg()),
        cust, opt);
    Fixture f{std::move(model).value(), search.config, {}};
    f.result = simulate(f.model, f.config, arch::platform_zu9cg());
    return f;
  }();
  return f;
}

TEST(TraceTest, ChartHasOneBarPerStage) {
  const std::string chart =
      utilization_chart(fixture().model, fixture().result);
  std::size_t bars = 0;
  for (std::size_t pos = 0; (pos = chart.find("Br.", pos)) != std::string::npos;
       ++pos) {
    ++bars;
  }
  EXPECT_EQ(bars, fixture().model.fused.stages.size());
  EXPECT_NE(chart.find("sh_l2_conv"), std::string::npos);
  EXPECT_NE(chart.find('%'), std::string::npos);
}

TEST(TraceTest, ChartBarWidthRespected) {
  const std::string chart =
      utilization_chart(fixture().model, fixture().result, 10);
  // Every bar is exactly 10 cells between the pipes.
  std::size_t pos = 0;
  while ((pos = chart.find('|', pos)) != std::string::npos) {
    const std::size_t end = chart.find('|', pos + 1);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(end - pos - 1, 10u);
    pos = end + 1;
  }
}

TEST(TraceTest, ChartRejectsDegenerateWidth) {
  EXPECT_THROW(utilization_chart(fixture().model, fixture().result, 1),
               InternalError);
}

TEST(TraceTest, CsvHasOneRowPerStage) {
  const CsvWriter csv = to_csv(fixture().model, fixture().result);
  const std::string text = csv.to_string();
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, fixture().model.fused.stages.size() + 1);  // + header
  EXPECT_NE(text.find("branch,stage,busy_cycles,stall_cycles,utilization"),
            std::string::npos);
}

TEST(TraceTest, UtilizationBetweenZeroAndOne) {
  const CsvWriter csv = to_csv(fixture().model, fixture().result);
  std::istringstream is(csv.to_string());
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    const auto last_comma = line.rfind(',');
    const double util = std::stod(line.substr(last_comma + 1));
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0);
  }
}

}  // namespace
}  // namespace fcad::sim
