// Cross-module integration tests: hand-checkable small accelerators,
// bandwidth accounting arithmetic, 16-bit baseline paths, and a four-branch
// decoder through the whole flow.
#include <gtest/gtest.h>

#include "arch/config_io.hpp"
#include "baselines/dnnbuilder.hpp"
#include "baselines/hybriddnn.hpp"
#include "core/pipeline.hpp"
#include "dse/in_branch.hpp"
#include "dse/search_driver.hpp"
#include "nn/builder.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "nn/zoo/classic_nets.hpp"
#include "sim/simulator.hpp"

namespace fcad {
namespace {

/// input -> conv(k3, tied bias) -> output: one stage, everything resident.
arch::ReorganizedModel tiny_model(int ch = 16, int hw = 32) {
  nn::GraphBuilder b("tiny");
  auto in = b.input("x", {ch, hw, hw});
  auto c = b.conv2d(in, "c", {.out_ch = ch, .kernel = 3});
  b.output(c, "y");
  auto g = std::move(b).build();
  FCAD_CHECK(g.is_ok());
  auto model = arch::reorganize(*g);
  FCAD_CHECK(model.is_ok());
  return std::move(model).value();
}

TEST(IntegrationTest, TinyModelEvaluationByHand) {
  // 16->16 @32x32 K=3: macs = 16*16*9*1024 = 2'359'296.
  const auto model = tiny_model();
  arch::AcceleratorConfig config;
  config.branches.push_back({.batch = 1, .units = {{4, 4, 2}}});  // 32 lanes
  const auto eval = arch::evaluate(model, config, arch::EvalMode::kQuantized);
  ASSERT_EQ(eval.branches.size(), 1u);
  // cycles = (16/4)*(16/4)*(32/2)*32*9 = 73'728 -> at 200 MHz: 2712.7 FPS.
  EXPECT_DOUBLE_EQ(eval.branches[0].stages[0].cycles, 73728.0);
  EXPECT_NEAR(eval.branches[0].fps, 200e6 / 73728.0, 1e-6);
  // 8-bit: 32 lanes -> 16 DSPs.
  EXPECT_EQ(eval.branches[0].dsps, 16);
  // gops = 2 * macs * fps.
  EXPECT_NEAR(eval.branches[0].gops,
              2.0 * 2359296.0 * eval.branches[0].fps * 1e-9, 1e-6);
}

TEST(IntegrationTest, BandwidthAccountingArithmetic) {
  // Head+tail stage: features stream in and out; tied bias params stream.
  const auto model = tiny_model();
  arch::AcceleratorConfig config;
  config.branches.push_back({.batch = 2, .units = {{16, 16, 32}}});
  const auto eval = arch::evaluate(model, config, arch::EvalMode::kQuantized);
  const auto& be = eval.branches[0];
  // Per frame: in 16*32*32 = 16384 B, out 16384 B; params: 16 bias bytes.
  // BW = params * (fps/batch) + features * fps.
  const double expected =
      (16.0 * (be.fps / 2) + 32768.0 * be.fps) * 1e-9;
  EXPECT_NEAR(be.bw_gbps, expected, 1e-9);
}

TEST(IntegrationTest, InBranchIsBandwidthAware) {
  // A slice whose bandwidth cannot even feed the minimal (pf = 1) pipeline
  // must be reported as infeasible — the accelerator cannot run slower than
  // its smallest configuration.
  const auto model = tiny_model();
  const dse::ResourceBudget starved{10000, 10000, 0.001};  // 1 MB/s
  const auto r = dse::in_branch_optimize(model, 0, starved, 1,
                                         nn::DataType::kInt8,
                                         nn::DataType::kInt8, 200.0);
  EXPECT_FALSE(r.met_batch_target);
  // A slice with just enough bandwidth for one pipeline is feasible, and the
  // greedy loop backs parallelism off until the traffic fits.
  const dse::ResourceBudget tight{10000, 10000, 0.004};  // 4 MB/s
  const auto rt = dse::in_branch_optimize(model, 0, tight, 1,
                                          nn::DataType::kInt8,
                                          nn::DataType::kInt8, 200.0);
  EXPECT_TRUE(rt.met_batch_target);
  EXPECT_LE(rt.bw_used, 0.004 + 1e-9);
}

TEST(IntegrationTest, InBranchExploitsAmpleBandwidth) {
  const auto model = tiny_model();
  const dse::ResourceBudget ample{100000, 100000, 1000.0};
  const auto r = dse::in_branch_optimize(model, 0, ample, 1,
                                         nn::DataType::kInt8,
                                         nn::DataType::kInt8, 200.0);
  ASSERT_TRUE(r.met_batch_target);
  // Nothing constrains the stage: the greedy search should reach max
  // parallelism (16*16*32 lanes).
  EXPECT_EQ(r.config.units[0].lanes(), 16LL * 16 * 32);
}

TEST(IntegrationTest, SimulatorSteadyStateByHand) {
  // One stage, 32 conv rows in 2 slabs (16 rows each in parallel):
  // steady frame period ~ 16 * (row_cycles + tile_overhead + row_overhead).
  const auto model = tiny_model();
  arch::AcceleratorConfig config;
  config.branches.push_back({.batch = 1, .units = {{4, 4, 2}}});
  sim::SimOptions opt;
  const auto result = sim::simulate(model, config, arch::platform_zu9cg(), opt);
  const double row_cycles = 4.0 * 4 * 32 * 9;  // in_tiles*out_tiles*W*K^2
  const double step =
      row_cycles + 4 * opt.tile_overhead_cycles + opt.row_overhead_cycles;
  const double expected_fps = 200e6 / (16.0 * step);
  EXPECT_NEAR(result.branches[0].fps, expected_fps, 0.01 * expected_fps);
}

TEST(IntegrationTest, SixteenBitBaselinesRun) {
  auto mimic = arch::reorganize(nn::zoo::mimic_decoder());
  ASSERT_TRUE(mimic.is_ok());
  const auto dnnb = baselines::run_dnnbuilder(*mimic, arch::platform_zu9cg(),
                                              nn::DataType::kInt16);
  EXPECT_GT(dnnb.fps, 0);
  EXPECT_LE(dnnb.dsps, 2520);
  // 16-bit halves the packing: fewer lanes fit, so no faster than 8-bit.
  const auto dnnb8 = baselines::run_dnnbuilder(*mimic, arch::platform_zu9cg(),
                                               nn::DataType::kInt8);
  EXPECT_LE(dnnb.fps, dnnb8.fps * 1.001);

  const auto hybrid8 = baselines::run_hybriddnn(*mimic, arch::platform_zu9cg(),
                                                nn::DataType::kInt8);
  const auto hybrid16 = baselines::run_hybriddnn(
      *mimic, arch::platform_zu9cg(), nn::DataType::kInt16);
  // 8-bit packs two lanes per DSP: the selected engine has at least as many
  // lanes as the 16-bit one.
  EXPECT_GE(hybrid8.lanes, hybrid16.lanes);
  EXPECT_GT(hybrid8.fps, hybrid16.fps);
}

TEST(IntegrationTest, FourBranchDecoderThroughFullFlow) {
  // Mirrors examples/custom_decoder.cpp: two concats sharing the latent map
  // (texture front-end and audio-driven branch).
  nn::GraphBuilder b("four_branch");
  auto latent = b.input("latent", {4, 8, 8});
  auto view = b.input("view", {3, 8, 8});
  auto audio = b.input("audio", {1, 8, 8});

  auto cau = [&](nn::LayerId x, const std::string& p, int ch) {
    x = b.conv2d(x, p + "_conv",
                 {.out_ch = ch, .kernel = 4, .untied_bias = true});
    x = b.leaky_relu(x, p + "_act");
    return b.upsample2x(x, p + "_up");
  };

  auto g1 = cau(latent, "g1", 32);
  g1 = cau(g1, "g2", 16);
  b.output(b.conv2d(g1, "g_out", {.out_ch = 3, .kernel = 4}), "geometry");

  auto shared = b.concat({latent, view}, "lv");
  shared = cau(shared, "s1", 64);
  auto t1 = cau(shared, "t1", 32);
  b.output(b.conv2d(t1, "t_out", {.out_ch = 3, .kernel = 4}), "texture");
  auto w1 = cau(shared, "w1", 16);
  b.output(b.conv2d(w1, "w_out", {.out_ch = 2, .kernel = 4}), "warp");

  auto mouth = b.concat({latent, audio}, "la");
  mouth = cau(mouth, "m1", 32);
  b.output(b.conv2d(mouth, "m_out", {.out_ch = 3, .kernel = 4}), "mouth");

  auto graph = std::move(b).build();
  ASSERT_TRUE(graph.is_ok()) << graph.status().to_string();

  core::PipelineOptions options;
  options.spec.customization.batch_sizes = {1, 2, 2, 1};
  options.spec.search.population = 25;
  options.spec.search.iterations = 5;
  options.run_simulation = true;
  core::Pipeline pipeline(std::move(graph).value(),
                          arch::platform_zu17eg());
  auto result = pipeline.run(options);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->model.num_branches(), 4);
  EXPECT_TRUE(result->search.feasible);
  // Shared stage s1 must be owned by the heavier texture branch.
  ASSERT_EQ(result->model.shared_stages.size(), 1u);
  EXPECT_EQ(result->model.owner[static_cast<std::size_t>(
                result->model.shared_stages[0])],
            1);
  // Config survives a save/load round trip and re-evaluates identically.
  const std::string text =
      arch::config_to_text(result->model, result->search.config);
  auto parsed = arch::config_from_text(result->model, text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const auto eval =
      arch::evaluate(result->model, *parsed, arch::EvalMode::kQuantized);
  EXPECT_EQ(eval.dsps, result->search.eval.dsps);
}

TEST(IntegrationTest, FusionStageCountsForAllBackbones) {
  const struct {
    nn::Graph graph;
    std::size_t stages;
  } cases[] = {
      {nn::zoo::alexnet(), 8u},     // 5 conv + 3 fc
      {nn::zoo::zfnet(), 8u},       // 5 conv + 3 fc
      {nn::zoo::vgg16(), 16u},      // 13 conv + 3 fc
      {nn::zoo::tiny_yolo(), 9u},   // 9 conv
  };
  for (const auto& c : cases) {
    auto model = arch::reorganize(c.graph);
    ASSERT_TRUE(model.is_ok()) << c.graph.name();
    EXPECT_EQ(model->fused.stages.size(), c.stages) << c.graph.name();
  }
}

TEST(IntegrationTest, CrossBranchCapConsistencyOnDecoder) {
  // Whatever config the DSE returns, no branch may report a higher FPS than
  // the production rate of the shared stages it consumes.
  auto model = arch::reorganize(nn::zoo::avatar_decoder());
  ASSERT_TRUE(model.is_ok());
  dse::SearchSpec spec;
  spec.customization.batch_sizes = {1, 2, 2};
  spec.search.population = 25;
  spec.search.iterations = 5;
  auto outcome =
      dse::SearchDriver(*model, arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());
  const auto& eval = outcome->search.eval;
  const auto& config = outcome->search.config;
  for (int s : model->shared_stages) {
    const int owner = model->owner[static_cast<std::size_t>(s)];
    // Find the stage latency inside the owner's evaluation.
    for (const arch::StageEval& se :
         eval.branches[static_cast<std::size_t>(owner)].stages) {
      if (se.stage != s) continue;
      const double producer_fps =
          config.branches[static_cast<std::size_t>(owner)].batch * 200e6 /
          se.cycles;
      for (std::size_t b = 0; b < model->branches.size(); ++b) {
        if (static_cast<int>(b) == owner) continue;
        bool consumes = false;
        for (int p : model->branches[b].path) consumes |= p == s;
        if (consumes) {
          EXPECT_LE(eval.branches[b].fps, producer_fps + 1e-6);
        }
      }
    }
  }
}

}  // namespace
}  // namespace fcad
