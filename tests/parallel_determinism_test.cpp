// Determinism suite for the parallel DSE engine: for a fixed seed, every
// search must produce bit-identical results whatever the thread count, and
// the fitness memoization cache must stay consistent under concurrent use.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "arch/platform.hpp"
#include "dse/engine.hpp"
#include "dse/fitness_cache.hpp"
#include "dse/strategies.hpp"
#include "dse/sweep.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "util/thread_pool.hpp"

namespace fcad::dse {
namespace {

const arch::ReorganizedModel& decoder_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(m.is_ok());
    return std::move(m).value();
  }();
  return model;
}

Customization decoder_customization() {
  Customization c;
  c.quantization = nn::DataType::kInt8;
  c.batch_sizes = {1, 2, 2};
  c.priorities = {1, 1, 1};
  return c;
}

CrossBranchOptions fast_options(int threads) {
  CrossBranchOptions opt;
  opt.population = 24;
  opt.iterations = 4;
  opt.seed = 1234;
  opt.threads = threads;
  return opt;
}

const std::vector<int> kThreadCounts = {1, 2, 8};

/// Exact (bitwise) equality of two search results. `seconds` and the cache
/// hit/miss split are intentionally excluded: wall-clock always varies, and
/// two workers may both miss the same key before one inserts it — the
/// *results* never differ, only the diagnostic counters may.
void expect_identical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.fitness, b.fitness);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.eval.dsps, b.eval.dsps);
  EXPECT_EQ(a.eval.brams, b.eval.brams);
  EXPECT_EQ(a.eval.bw_gbps, b.eval.bw_gbps);
  EXPECT_EQ(a.eval.min_fps, b.eval.min_fps);
  EXPECT_EQ(a.trace.convergence_iteration, b.trace.convergence_iteration);
  EXPECT_EQ(a.trace.evaluations, b.trace.evaluations);
  EXPECT_EQ(a.trace.best_fitness, b.trace.best_fitness);
  EXPECT_EQ(a.distribution.c_frac, b.distribution.c_frac);
  EXPECT_EQ(a.distribution.m_frac, b.distribution.m_frac);
  EXPECT_EQ(a.distribution.bw_frac, b.distribution.bw_frac);
  ASSERT_EQ(a.config.branches.size(), b.config.branches.size());
  for (std::size_t i = 0; i < a.config.branches.size(); ++i) {
    EXPECT_EQ(a.config.branches[i].batch, b.config.branches[i].batch);
    EXPECT_EQ(a.config.branches[i].units, b.config.branches[i].units);
  }
}

TEST(ParallelDeterminismTest, CrossBranchSearchIdenticalAcrossThreadCounts) {
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  const SearchResult baseline =
      cross_branch_search(decoder_model(), budget, decoder_customization(),
                          fast_options(kThreadCounts.front()));
  for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
    const SearchResult other =
        cross_branch_search(decoder_model(), budget, decoder_customization(),
                            fast_options(kThreadCounts[t]));
    expect_identical(baseline, other);
  }
}

TEST(ParallelDeterminismTest, StrategiesIdenticalAcrossThreadCounts) {
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  for (SearchStrategy strategy :
       {SearchStrategy::kRandom, SearchStrategy::kAnnealing}) {
    const SearchResult baseline =
        strategy_search(decoder_model(), budget, decoder_customization(),
                        fast_options(kThreadCounts.front()), strategy);
    for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
      const SearchResult other =
          strategy_search(decoder_model(), budget, decoder_customization(),
                          fast_options(kThreadCounts[t]), strategy);
      expect_identical(baseline, other);
    }
  }
}

TEST(ParallelDeterminismTest, SweepIdenticalAcrossThreadCounts) {
  SweepOptions options;
  options.quantizations = {nn::DataType::kInt8, nn::DataType::kInt16};
  options.frequencies_mhz = {150, 200};
  options.search = fast_options(1);
  options.customization.batch_sizes = {1, 2, 2};

  auto baseline = quantization_frequency_sweep(
      decoder_model(), arch::platform_zu9cg(), options);
  ASSERT_TRUE(baseline.is_ok());
  for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
    options.search.threads = kThreadCounts[t];
    auto other = quantization_frequency_sweep(decoder_model(),
                                              arch::platform_zu9cg(), options);
    ASSERT_TRUE(other.is_ok());
    ASSERT_EQ(baseline->size(), other->size());
    for (std::size_t i = 0; i < baseline->size(); ++i) {
      EXPECT_EQ((*baseline)[i].pareto_optimal, (*other)[i].pareto_optimal);
      expect_identical((*baseline)[i].result, (*other)[i].result);
    }
  }
}

TEST(ParallelDeterminismTest, ConvergenceStudyIdenticalAcrossThreadCounts) {
  DseRequest request;
  request.platform = arch::platform_zu9cg();
  request.customization = decoder_customization();
  request.options = fast_options(1);
  const ConvergenceStats baseline =
      convergence_study(decoder_model(), request, 4);
  for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
    request.options.threads = kThreadCounts[t];
    const ConvergenceStats other =
        convergence_study(decoder_model(), request, 4);
    EXPECT_EQ(baseline.mean_iterations, other.mean_iterations);
    EXPECT_EQ(baseline.min_iterations, other.min_iterations);
    EXPECT_EQ(baseline.max_iterations, other.max_iterations);
    EXPECT_EQ(baseline.mean_fitness, other.mean_fitness);
    EXPECT_EQ(baseline.fitness_spread, other.fitness_spread);
  }
}

TEST(ParallelDeterminismTest, TrafficSearchIdenticalAcrossThreadCounts) {
  DseRequest request;
  request.platform = arch::platform_zu9cg();
  request.options = fast_options(1);
  request.options.seed = 42;

  TrafficProfile profile;
  profile.workload.users = 2;
  profile.workload.frame_rate_hz = 30;
  profile.workload.duration_s = 0.5;
  profile.workload.seed = 42;
  profile.fleet.instances = 2;
  profile.max_batch = 4;

  auto baseline = optimize_for_traffic(decoder_model(), request, profile);
  ASSERT_TRUE(baseline.is_ok());
  for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
    request.options.threads = kThreadCounts[t];
    auto other = optimize_for_traffic(decoder_model(), request, profile);
    ASSERT_TRUE(other.is_ok());
    EXPECT_EQ(baseline->batch_sizes, other->batch_sizes);
    EXPECT_EQ(baseline->users_served, other->users_served);
    EXPECT_EQ(baseline->sla_met, other->sla_met);
    EXPECT_EQ(baseline->sla_fitness, other->sla_fitness);
    EXPECT_EQ(baseline->stats.latency.p99, other->stats.latency.p99);
    expect_identical(baseline->search, other->search);
  }
}

TEST(ParallelDeterminismTest, RepeatedRunsHitTheCache) {
  // Same search twice in a row: not only identical results, but a swarm
  // whose particles revisit converged configs should see real cache traffic.
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  CrossBranchOptions opt = fast_options(1);
  opt.population = 40;
  opt.iterations = 8;
  const SearchResult result = cross_branch_search(
      decoder_model(), budget, decoder_customization(), opt);
  EXPECT_EQ(result.trace.cache_hits + result.trace.cache_misses,
            static_cast<std::int64_t>(opt.population) * opt.iterations);
  EXPECT_GT(result.trace.cache_hits, 0);
}

// ------------------------------------------------------- fitness cache --

TEST(FitnessCacheStressTest, ConcurrentFindInsertStaysConsistent) {
  FitnessCache cache;
  util::ThreadPool pool(8);

  // 64 distinct synthetic configs, hammered by 8000 interleaved lookups.
  constexpr int kConfigs = 64;
  constexpr std::int64_t kOps = 8000;
  auto config_for = [&](int c) {
    arch::AcceleratorConfig config;
    arch::BranchHardwareConfig branch;
    branch.batch = c + 1;
    branch.units.push_back(arch::UnitConfig{1 + c % 7, 1 + c % 5, 1 + c % 3});
    config.branches.push_back(branch);
    return config;
  };

  std::atomic<std::int64_t> mismatches{0};
  pool.parallel_for(kOps, [&](std::int64_t op) {
    const int c = static_cast<int>(op % kConfigs);
    const FitnessCache::Key key = FitnessCache::config_key(
        config_for(c), /*met_mask=*/1, arch::EvalMode::kAnalytical);
    auto entry = cache.find(key);
    if (!entry) {
      FitnessCache::Entry fresh;
      fresh.fitness = static_cast<double>(c) * 3.25;
      fresh.feasible = c % 2 == 0;
      entry = cache.insert(key, fresh);
    }
    // Whoever inserted, the resident value must be the pure function of the
    // key — never a torn or foreign entry.
    if (entry->fitness != static_cast<double>(c) * 3.25 ||
        entry->feasible != (c % 2 == 0)) {
      mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  // Every lookup is accounted for, and at most one miss per key per racing
  // thread ever happened: hits + misses == kOps, misses < kConfigs + pool
  // width (first-round races).
  EXPECT_EQ(cache.hits() + cache.misses(), kOps);
  EXPECT_GE(cache.misses(), kConfigs);
  EXPECT_LT(cache.misses(), kConfigs + 8 * kConfigs);
  EXPECT_GT(cache.hits(), kOps / 2);
}

TEST(FitnessCacheStressTest, DistinctConfigsGetDistinctKeys) {
  // Sanity on the 128-bit key: permuting unit factors or flags must change
  // it (a collision here would silently merge two designs).
  arch::AcceleratorConfig config;
  arch::BranchHardwareConfig branch;
  branch.batch = 2;
  branch.units.push_back(arch::UnitConfig{2, 3, 4});
  config.branches.push_back(branch);

  const auto base = FitnessCache::config_key(config, 1, arch::EvalMode::kAnalytical);
  EXPECT_FALSE(base ==
               FitnessCache::config_key(config, 0, arch::EvalMode::kAnalytical));
  EXPECT_FALSE(base ==
               FitnessCache::config_key(config, 1, arch::EvalMode::kQuantized));
  config.branches[0].units[0] = arch::UnitConfig{4, 3, 2};
  EXPECT_FALSE(base ==
               FitnessCache::config_key(config, 1, arch::EvalMode::kAnalytical));
}

}  // namespace
}  // namespace fcad::dse
