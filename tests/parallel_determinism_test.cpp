// Determinism suite for the parallel DSE engine: for a fixed seed, every
// search must produce bit-identical results whatever the thread count, and
// the fitness memoization cache must stay consistent under concurrent use.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "arch/platform.hpp"
#include "dse/fitness_cache.hpp"
#include "dse/search_driver.hpp"
#include "dse/strategy.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serving/daemon.hpp"
#include "serving/fleet.hpp"
#include "serving/stats.hpp"
#include "serving/workload.hpp"
#include "util/thread_pool.hpp"

namespace fcad::dse {
namespace {

const arch::ReorganizedModel& decoder_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(m.is_ok());
    return std::move(m).value();
  }();
  return model;
}

Customization decoder_customization() {
  Customization c;
  c.quantization = nn::DataType::kInt8;
  c.batch_sizes = {1, 2, 2};
  c.priorities = {1, 1, 1};
  return c;
}

CrossBranchOptions fast_options(int threads) {
  CrossBranchOptions opt;
  opt.population = 24;
  opt.iterations = 4;
  opt.seed = 1234;
  opt.threads = threads;
  return opt;
}

const std::vector<int> kThreadCounts = {1, 2, 8};

/// ServeSpec wrapper: these tests pin per-FleetOptions determinism; the
/// spec-level SLA/clock resolution is covered by serving_test/clock_test.
StatusOr<serving::ServingStats> run_fleet(
    const serving::ServiceModel& service,
    const std::vector<serving::Request>& workload,
    const serving::FleetOptions& options,
    const util::RunScope* scope = nullptr) {
  serving::ServeSpec spec;
  spec.fleet = options;
  return serving::simulate_fleet(service, workload, spec, scope);
}

/// Exact (bitwise) equality of two search results. `seconds` and the cache
/// hit/miss split are intentionally excluded: wall-clock always varies, and
/// two workers may both miss the same key before one inserts it — the
/// *results* never differ, only the diagnostic counters may.
void expect_identical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.fitness, b.fitness);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.eval.dsps, b.eval.dsps);
  EXPECT_EQ(a.eval.brams, b.eval.brams);
  EXPECT_EQ(a.eval.bw_gbps, b.eval.bw_gbps);
  EXPECT_EQ(a.eval.min_fps, b.eval.min_fps);
  EXPECT_EQ(a.trace.convergence_iteration, b.trace.convergence_iteration);
  EXPECT_EQ(a.trace.evaluations, b.trace.evaluations);
  EXPECT_EQ(a.trace.best_fitness, b.trace.best_fitness);
  EXPECT_EQ(a.distribution.c_frac, b.distribution.c_frac);
  EXPECT_EQ(a.distribution.m_frac, b.distribution.m_frac);
  EXPECT_EQ(a.distribution.bw_frac, b.distribution.bw_frac);
  ASSERT_EQ(a.config.branches.size(), b.config.branches.size());
  for (std::size_t i = 0; i < a.config.branches.size(); ++i) {
    EXPECT_EQ(a.config.branches[i].batch, b.config.branches[i].batch);
    EXPECT_EQ(a.config.branches[i].units, b.config.branches[i].units);
  }
}

TEST(ParallelDeterminismTest, CrossBranchSearchIdenticalAcrossThreadCounts) {
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  const SearchResult baseline =
      cross_branch_search(decoder_model(), budget, decoder_customization(),
                          fast_options(kThreadCounts.front()));
  for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
    const SearchResult other =
        cross_branch_search(decoder_model(), budget, decoder_customization(),
                            fast_options(kThreadCounts[t]));
    expect_identical(baseline, other);
  }
}

TEST(ParallelDeterminismTest, StrategiesIdenticalAcrossThreadCounts) {
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  for (const char* strategy : {"random", "annealing"}) {
    auto baseline = run_search_strategy(
        strategy, decoder_model(), budget, decoder_customization(),
        fast_options(kThreadCounts.front()));
    ASSERT_TRUE(baseline.is_ok());
    for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
      auto other = run_search_strategy(
          strategy, decoder_model(), budget, decoder_customization(),
          fast_options(kThreadCounts[t]));
      ASSERT_TRUE(other.is_ok());
      expect_identical(*baseline, *other);
    }
  }
}

TEST(ParallelDeterminismTest, ParticleSwarmMatchesPreRefactorGolden) {
  // Bit-exactness pin across the strategy-layer refactor: these constants
  // were captured from the monolithic pre-refactor cross_branch_search()
  // (population 24, iterations 4, seed 1234, int8, batches {1,2,2}, ZU9CG).
  // The pluggable "particle-swarm" strategy must reproduce them bit for bit
  // at every thread count. A mismatch means the refactor changed the RNG
  // draw order or the reduction order — not a tolerable drift.
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  for (int threads : kThreadCounts) {
    const SearchResult r =
        cross_branch_search(decoder_model(), budget, decoder_customization(),
                            fast_options(threads));
    EXPECT_EQ(r.fitness, 263.66194015156748) << "threads " << threads;
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.eval.min_fps, 84.771050347222229);
    EXPECT_EQ(r.eval.dsps, 2111);
    EXPECT_EQ(r.eval.brams, 1060);
    EXPECT_EQ(r.eval.bw_gbps, 0.70421379937065987);
    EXPECT_EQ(r.trace.convergence_iteration, 3);
    EXPECT_EQ(r.trace.evaluations, 288);
    const std::vector<double> golden_curve = {
        196.32457130791721, 234.98362446375017, 263.66194015156748,
        263.66194015156748};
    EXPECT_EQ(r.trace.best_fitness, golden_curve);
    const std::vector<double> golden_c_frac = {
        0.09098911261888476, 0.69924607099591674, 0.20976481638519859};
    const std::vector<double> golden_m_frac = {
        0.20934578055001801, 0.43844878688964323, 0.35220543256033876};
    const std::vector<double> golden_bw_frac = {
        0.39101799157294714, 0.34875576650757506, 0.2602262419194778};
    EXPECT_EQ(r.distribution.c_frac, golden_c_frac);
    EXPECT_EQ(r.distribution.m_frac, golden_m_frac);
    EXPECT_EQ(r.distribution.bw_frac, golden_bw_frac);
    ASSERT_EQ(r.config.branches.size(), 3u);
    EXPECT_EQ(r.config.branches[0].batch, 1);
    EXPECT_EQ(r.config.branches[1].batch, 2);
    EXPECT_EQ(r.config.branches[2].batch, 2);
  }
}

TEST(ParallelDeterminismTest, DriverOptimizeIdenticalAcrossThreadCounts) {
  // The same property through the unified entry point, exercising the
  // RunControl thread override instead of CrossBranchOptions::threads.
  SearchSpec spec;
  spec.customization = decoder_customization();
  spec.search = fast_options(1);
  const SearchDriver driver(decoder_model(), arch::platform_zu9cg());
  auto baseline = driver.run(spec);
  ASSERT_TRUE(baseline.is_ok());
  EXPECT_FALSE(baseline->cancelled);
  for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
    spec.control.threads = kThreadCounts[t];
    auto other = driver.run(spec);
    ASSERT_TRUE(other.is_ok());
    expect_identical(baseline->search, other->search);
  }
}

TEST(ParallelDeterminismTest, SweepIdenticalAcrossThreadCounts) {
  SearchSpec spec;
  spec.kind = SearchKind::kSweep;
  spec.sweep.quantizations = {nn::DataType::kInt8, nn::DataType::kInt16};
  spec.sweep.frequencies_mhz = {150, 200};
  spec.search = fast_options(1);
  spec.customization.batch_sizes = {1, 2, 2};

  const SearchDriver driver(decoder_model(), arch::platform_zu9cg());
  auto baseline = driver.run(spec);
  ASSERT_TRUE(baseline.is_ok());
  for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
    spec.search.threads = kThreadCounts[t];
    auto other = driver.run(spec);
    ASSERT_TRUE(other.is_ok());
    ASSERT_EQ(baseline->sweep.size(), other->sweep.size());
    for (std::size_t i = 0; i < baseline->sweep.size(); ++i) {
      EXPECT_EQ(baseline->sweep[i].pareto_optimal,
                other->sweep[i].pareto_optimal);
      expect_identical(baseline->sweep[i].result, other->sweep[i].result);
    }
  }
}

TEST(ParallelDeterminismTest, DatapathSweepIdenticalAcrossThreadCounts) {
  // The joint precision x microarchitecture x batch grid must hold the same
  // determinism contract as the legacy quantization sweep, and its frontier
  // (min FPS vs accuracy penalty) must keep more than one datapath alive.
  SearchSpec spec;
  spec.kind = SearchKind::kSweep;
  spec.sweep.datapaths = {"pipelined-int8", "staged-int8", "pipelined-int16",
                          "pipelined-int8x4", "pipelined-int4"};
  spec.sweep.frequencies_mhz = {200};
  spec.sweep.batch_scales = {1, 2};
  spec.search = fast_options(1);
  spec.customization.batch_sizes = {1, 2, 2};

  const SearchDriver driver(decoder_model(), arch::platform_zu9cg());
  auto baseline = driver.run(spec);
  ASSERT_TRUE(baseline.is_ok());
  ASSERT_EQ(baseline->sweep.size(), 10u);  // 5 datapaths x 1 freq x 2 scales

  std::set<std::string> frontier_datapaths;
  for (const SweepPoint& point : baseline->sweep) {
    if (point.pareto_optimal) frontier_datapaths.insert(point.datapath);
  }
  EXPECT_GE(frontier_datapaths.size(), 2u)
      << "accuracy/throughput frontier collapsed to one datapath";

  for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
    spec.search.threads = kThreadCounts[t];
    auto other = driver.run(spec);
    ASSERT_TRUE(other.is_ok());
    ASSERT_EQ(baseline->sweep.size(), other->sweep.size());
    for (std::size_t i = 0; i < baseline->sweep.size(); ++i) {
      EXPECT_EQ(baseline->sweep[i].datapath, other->sweep[i].datapath);
      EXPECT_EQ(baseline->sweep[i].batch_scale, other->sweep[i].batch_scale);
      EXPECT_EQ(baseline->sweep[i].pareto_optimal,
                other->sweep[i].pareto_optimal);
      EXPECT_EQ(baseline->sweep[i].result.eval.accuracy_proxy,
                other->sweep[i].result.eval.accuracy_proxy);
      EXPECT_EQ(baseline->sweep[i].result.eval.luts,
                other->sweep[i].result.eval.luts);
      expect_identical(baseline->sweep[i].result, other->sweep[i].result);
    }
  }
}

TEST(ParallelDeterminismTest, ConvergenceStudyIdenticalAcrossThreadCounts) {
  SearchSpec spec;
  spec.kind = SearchKind::kConvergence;
  spec.customization = decoder_customization();
  spec.search = fast_options(1);
  spec.convergence_runs = 4;
  const SearchDriver driver(decoder_model(), arch::platform_zu9cg());
  auto baseline = driver.run(spec);
  ASSERT_TRUE(baseline.is_ok());
  for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
    spec.search.threads = kThreadCounts[t];
    auto outcome = driver.run(spec);
    ASSERT_TRUE(outcome.is_ok());
    const ConvergenceStats& other = outcome->convergence;
    EXPECT_EQ(baseline->convergence.mean_iterations, other.mean_iterations);
    EXPECT_EQ(baseline->convergence.min_iterations, other.min_iterations);
    EXPECT_EQ(baseline->convergence.max_iterations, other.max_iterations);
    EXPECT_EQ(baseline->convergence.mean_fitness, other.mean_fitness);
    EXPECT_EQ(baseline->convergence.fitness_spread, other.fitness_spread);
  }
}

TEST(ParallelDeterminismTest, TrafficSearchIdenticalAcrossThreadCounts) {
  SearchSpec spec;
  spec.kind = SearchKind::kTraffic;
  spec.search = fast_options(1);
  spec.search.seed = 42;
  spec.traffic.workload.users = 2;
  spec.traffic.workload.frame_rate_hz = 30;
  spec.traffic.workload.duration_s = 0.5;
  spec.traffic.workload.seed = 42;
  spec.traffic.fleet.instances = 2;
  spec.traffic.max_batch = 4;

  const SearchDriver driver(decoder_model(), arch::platform_zu9cg());
  auto baseline = driver.run(spec);
  ASSERT_TRUE(baseline.is_ok());
  for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
    spec.search.threads = kThreadCounts[t];
    auto outcome = driver.run(spec);
    ASSERT_TRUE(outcome.is_ok());
    const TrafficSearchResult& other = outcome->traffic;
    EXPECT_EQ(baseline->traffic.batch_sizes, other.batch_sizes);
    EXPECT_EQ(baseline->traffic.users_served, other.users_served);
    EXPECT_EQ(baseline->traffic.sla_met, other.sla_met);
    EXPECT_EQ(baseline->traffic.sla_fitness, other.sla_fitness);
    EXPECT_EQ(baseline->traffic.stats.latency.p99, other.stats.latency.p99);
    expect_identical(baseline->traffic.search, other.search);
  }
}

TEST(ParallelDeterminismTest, FleetShardedReplayIdenticalAcrossThreadCounts) {
  // The sharded fleet replay must be a pure function of the shard count:
  // for every pinned shard layout (1/2/8), running the per-shard event
  // loops on 1, 2, or 8 pool threads merges to bit-identical stats. The
  // thread override flows both through FleetOptions::threads and through
  // RunControl (the scope wins), mirroring how SearchDriver resolves it.
  serving::WorkloadOptions wl;
  wl.users = 16;
  wl.branches = 2;
  wl.frame_rate_hz = 80;
  wl.duration_s = 1.0;
  wl.seed = 9;
  auto workload = serving::generate_workload(wl);
  ASSERT_TRUE(workload.is_ok());
  serving::ServiceModel service;
  service.branches = {{2, 3000.0}, {4, 5000.0}};

  for (int shards : {1, 2, 8}) {
    serving::FleetOptions options;
    options.instances = 8;
    options.shards = shards;
    options.switch_penalty_us = 250;
    options.threads = kThreadCounts.front();
    auto baseline = run_fleet(service, *workload, options);
    ASSERT_TRUE(baseline.is_ok());
    EXPECT_EQ(baseline->completed, baseline->offered);
    const std::vector<std::string> baseline_row =
        serving::serving_csv_row({}, *baseline);
    for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
      options.threads = kThreadCounts[t];
      auto other = run_fleet(service, *workload, options);
      ASSERT_TRUE(other.is_ok());
      EXPECT_EQ(serving::serving_csv_row({}, *other), baseline_row)
          << "shards " << shards << ", threads " << kThreadCounts[t];
      EXPECT_EQ(other->latency.p99, baseline->latency.p99);
      EXPECT_EQ(other->queue_wait.mean, baseline->queue_wait.mean);
      EXPECT_EQ(other->branch_completed, baseline->branch_completed);
      ASSERT_EQ(other->instances.size(), baseline->instances.size());
      for (std::size_t i = 0; i < other->instances.size(); ++i) {
        EXPECT_EQ(other->instances[i].busy_us,
                  baseline->instances[i].busy_us);
        EXPECT_EQ(other->instances[i].batches,
                  baseline->instances[i].batches);
      }

      // The RunControl thread override takes the same path the DSE uses.
      util::RunControl control;
      control.threads = kThreadCounts[t];
      const util::RunScope scope(control);
      serving::FleetOptions via_scope = options;
      via_scope.threads = 1;
      auto observed =
          run_fleet(service, *workload, via_scope, &scope);
      ASSERT_TRUE(observed.is_ok());
      EXPECT_EQ(serving::serving_csv_row({}, *observed), baseline_row);
    }
  }
}

TEST(ParallelDeterminismTest, ElasticFleetReplayIdenticalAcrossThreadCounts) {
  // The elastic contract: autoscaling, resharding, and the fault schedule
  // are shard-local decisions at virtual-time boundaries, so a drift
  // scenario replays bit-identically for any pool size at every pinned
  // shard layout — including the elastic event counters themselves.
  serving::WorkloadOptions wl;
  wl.users = 8;
  wl.branches = 2;
  wl.frame_rate_hz = 40;
  wl.duration_s = 3.0;
  wl.seed = 21;
  serving::ScenarioSpec scenario;
  serving::FlashCrowdSpec flash;
  flash.start_s = 0.5;
  flash.end_s = 2.0;
  flash.rate_multiplier = 3.0;
  flash.extra_users = 4;
  scenario.flash.push_back(flash);
  serving::InstanceFault fault;
  fault.instance = 1;
  fault.fail_s = 0.8;
  fault.recover_s = 1.6;
  scenario.faults.push_back(fault);
  auto workload = serving::generate_scenario_workload(wl, scenario);
  ASSERT_TRUE(workload.is_ok());
  serving::ServiceModel service;
  service.branches = {{2, 3000.0}, {4, 5000.0}};

  for (int shards : {1, 2, 4}) {
    serving::ServeSpec spec;
    spec.fleet.instances = 4;
    spec.fleet.shards = shards;
    spec.sla.p99_bound_us = 25000;
    spec.scenario = scenario;
    spec.elastic.autoscale.max_instances = 12;
    spec.elastic.autoscale.high_watermark = 0.6;
    spec.elastic.autoscale.low_watermark = 0.2;
    spec.elastic.autoscale.window_us = 100000;
    spec.elastic.autoscale.cooldown_us = 100000;
    spec.elastic.reshard.p99_fraction = 0.6;
    spec.elastic.reshard.window = 64;
    spec.elastic.reshard.cooldown_us = 200000;

    spec.fleet.threads = kThreadCounts.front();
    auto baseline = serving::simulate_fleet(service, *workload, spec);
    ASSERT_TRUE(baseline.is_ok());
    EXPECT_EQ(baseline->completed, baseline->offered);
    EXPECT_GT(baseline->scale_up_events, 0) << "shards " << shards;
    EXPECT_EQ(baseline->fault_events, 1);
    EXPECT_EQ(baseline->recover_events, 1);
    const std::vector<std::string> baseline_row =
        serving::serving_csv_row({}, *baseline);
    for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
      spec.fleet.threads = kThreadCounts[t];
      auto other = serving::simulate_fleet(service, *workload, spec);
      ASSERT_TRUE(other.is_ok());
      EXPECT_EQ(serving::serving_csv_row({}, *other), baseline_row)
          << "shards " << shards << ", threads " << kThreadCounts[t];
      EXPECT_EQ(other->scale_up_events, baseline->scale_up_events);
      EXPECT_EQ(other->scale_down_events, baseline->scale_down_events);
      EXPECT_EQ(other->reshard_splits, baseline->reshard_splits);
      EXPECT_EQ(other->latency.p99, baseline->latency.p99);
      EXPECT_EQ(other->branch_completed, baseline->branch_completed);
    }
  }
}

/// Installs an ambient tracer (and optionally bulk metrics collection) for
/// one scope, uninstalling on destruction even when an EXPECT fails.
class ScopedObservation {
 public:
  explicit ScopedObservation(bool metrics) : metrics_(metrics) {
    obs::install_tracer(&tracer_);
    if (metrics_) obs::set_metrics_collection(true);
  }
  ~ScopedObservation() {
    obs::install_tracer(nullptr);
    if (metrics_) obs::set_metrics_collection(false);
  }
  const obs::Tracer& tracer() const { return tracer_; }

 private:
  obs::Tracer tracer_;
  bool metrics_;
};

TEST(ParallelDeterminismTest, SearchIdenticalWithTracingOnOrOff) {
  // The observability hard requirement: installing the tracer (and turning
  // bulk metrics collection on) must not perturb a single output bit at any
  // thread count. Tracing is write-only; any divergence here means an
  // instrumentation site leaked into engine control flow.
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  const SearchResult baseline =
      cross_branch_search(decoder_model(), budget, decoder_customization(),
                          fast_options(1));
  for (int threads : kThreadCounts) {
    ScopedObservation obs(/*metrics=*/true);
    const SearchResult traced =
        cross_branch_search(decoder_model(), budget, decoder_customization(),
                            fast_options(threads));
    expect_identical(baseline, traced);
    EXPECT_GT(obs.tracer().events(), 0) << "tracer saw no spans";
  }
}

TEST(ParallelDeterminismTest, FleetReplayIdenticalWithTracingOnOrOff) {
  // Same contract for the serving fleet, over the full shard x thread grid:
  // per-shard event loops emit virtual-time spans, yet every stat (and the
  // exported CSV row) must match the uninstrumented replay bit for bit.
  serving::WorkloadOptions wl;
  wl.users = 16;
  wl.branches = 2;
  wl.frame_rate_hz = 80;
  wl.duration_s = 1.0;
  wl.seed = 9;
  auto workload = serving::generate_workload(wl);
  ASSERT_TRUE(workload.is_ok());
  serving::ServiceModel service;
  service.branches = {{2, 3000.0}, {4, 5000.0}};

  for (int shards : {1, 2, 8}) {
    serving::FleetOptions options;
    options.instances = 8;
    options.shards = shards;
    options.switch_penalty_us = 250;
    options.threads = 1;
    auto baseline = run_fleet(service, *workload, options);
    ASSERT_TRUE(baseline.is_ok());
    const std::vector<std::string> baseline_row =
        serving::serving_csv_row({}, *baseline);
    for (int threads : kThreadCounts) {
      ScopedObservation obs(/*metrics=*/true);
      options.threads = threads;
      auto traced = run_fleet(service, *workload, options);
      ASSERT_TRUE(traced.is_ok());
      EXPECT_EQ(serving::serving_csv_row({}, *traced), baseline_row)
          << "shards " << shards << ", threads " << threads;
      EXPECT_EQ(traced->branch_completed, baseline->branch_completed);
      EXPECT_GT(obs.tracer().events(), 0) << "tracer saw no spans";
    }
  }
}

TEST(ParallelDeterminismTest, TraceBytesIdenticalAcrossThreadCounts) {
  // Stronger than result identity: the serving lanes carry virtual time and
  // are each appended by exactly one event loop, so the *trace file itself*
  // must come out byte-identical for any thread count at a fixed shard
  // layout. (Wall-clock DSE/pool lanes can't promise this; a fleet-only
  // replay has none.)
  serving::WorkloadOptions wl;
  wl.users = 8;
  wl.branches = 2;
  wl.frame_rate_hz = 60;
  wl.duration_s = 0.5;
  wl.seed = 31;
  auto workload = serving::generate_workload(wl);
  ASSERT_TRUE(workload.is_ok());
  serving::ServiceModel service;
  service.branches = {{2, 3000.0}, {4, 5000.0}};

  serving::FleetOptions options;
  options.instances = 4;
  options.shards = 4;
  options.switch_penalty_us = 250;

  std::string baseline_json;
  for (int threads : kThreadCounts) {
    ScopedObservation obs(/*metrics=*/false);
    options.threads = threads;
    auto stats = run_fleet(service, *workload, options);
    ASSERT_TRUE(stats.is_ok());
    const std::string json = obs.tracer().to_json(obs::kServingPid);
    if (baseline_json.empty()) {
      baseline_json = json;
    } else {
      EXPECT_EQ(json, baseline_json) << "threads " << threads;
    }
  }
  EXPECT_FALSE(baseline_json.empty());
}

TEST(ParallelDeterminismTest, RepeatedRunsHitTheCache) {
  // Same search twice in a row: not only identical results, but a swarm
  // whose particles revisit converged configs should see real cache traffic.
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  CrossBranchOptions opt = fast_options(1);
  opt.population = 40;
  opt.iterations = 8;
  const SearchResult result = cross_branch_search(
      decoder_model(), budget, decoder_customization(), opt);
  EXPECT_EQ(result.trace.cache_hits + result.trace.cache_misses,
            static_cast<std::int64_t>(opt.population) * opt.iterations);
  EXPECT_GT(result.trace.cache_hits, 0);
}

// ------------------------------------------------------- fitness cache --

TEST(FitnessCacheStressTest, ConcurrentFindInsertStaysConsistent) {
  FitnessCache cache;
  util::ThreadPool pool(8);

  // 64 distinct synthetic configs, hammered by 8000 interleaved lookups.
  constexpr int kConfigs = 64;
  constexpr std::int64_t kOps = 8000;
  auto config_for = [&](int c) {
    arch::AcceleratorConfig config;
    arch::BranchHardwareConfig branch;
    branch.batch = c + 1;
    branch.units.push_back(arch::UnitConfig{1 + c % 7, 1 + c % 5, 1 + c % 3});
    config.branches.push_back(branch);
    return config;
  };

  std::atomic<std::int64_t> mismatches{0};
  pool.parallel_for(kOps, [&](std::int64_t op) {
    const int c = static_cast<int>(op % kConfigs);
    const FitnessCache::Key key = FitnessCache::config_key(
        config_for(c), /*met_mask=*/1, arch::EvalMode::kAnalytical);
    auto entry = cache.find(key);
    if (!entry) {
      FitnessCache::Entry fresh;
      fresh.fitness = static_cast<double>(c) * 3.25;
      fresh.feasible = c % 2 == 0;
      entry = cache.insert(key, fresh);
    }
    // Whoever inserted, the resident value must be the pure function of the
    // key — never a torn or foreign entry.
    if (entry->fitness != static_cast<double>(c) * 3.25 ||
        entry->feasible != (c % 2 == 0)) {
      mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  // Every lookup is accounted for, and at most one miss per key per racing
  // thread ever happened: hits + misses == kOps, misses < kConfigs + pool
  // width (first-round races).
  EXPECT_EQ(cache.hits() + cache.misses(), kOps);
  EXPECT_GE(cache.misses(), kConfigs);
  EXPECT_LT(cache.misses(), kConfigs + 8 * kConfigs);
  EXPECT_GT(cache.hits(), kOps / 2);
}

TEST(FitnessCacheStressTest, DistinctConfigsGetDistinctKeys) {
  // Sanity on the 128-bit key: permuting unit factors or flags must change
  // it (a collision here would silently merge two designs).
  arch::AcceleratorConfig config;
  arch::BranchHardwareConfig branch;
  branch.batch = 2;
  branch.units.push_back(arch::UnitConfig{2, 3, 4});
  config.branches.push_back(branch);

  const auto base = FitnessCache::config_key(config, 1, arch::EvalMode::kAnalytical);
  EXPECT_FALSE(base ==
               FitnessCache::config_key(config, 0, arch::EvalMode::kAnalytical));
  EXPECT_FALSE(base ==
               FitnessCache::config_key(config, 1, arch::EvalMode::kQuantized));
  config.branches[0].units[0] = arch::UnitConfig{4, 3, 2};
  EXPECT_FALSE(base ==
               FitnessCache::config_key(config, 1, arch::EvalMode::kAnalytical));
}

TEST(ParallelDeterminismTest, DaemonVirtualClockTraceIdenticalAcrossThreads) {
  // The daemon's online submit path under a virtual clock must stay a pure
  // function of the trace: per-request records and merged stats are
  // byte-identical for any pool size, with admission control on (the
  // admission window is per-shard state, so it is as deterministic as the
  // event order itself).
  serving::WorkloadOptions wl;
  wl.users = 12;
  wl.branches = 2;
  wl.frame_rate_hz = 60;
  wl.duration_s = 1.0;
  wl.seed = 17;
  auto workload = serving::generate_workload(wl);
  ASSERT_TRUE(workload.is_ok());
  serving::ServiceModel service;
  service.branches = {{2, 3000.0}, {4, 5000.0}};

  serving::ServeSpec spec;
  spec.fleet.instances = 8;
  spec.fleet.shards = 4;
  spec.fleet.keep_records = true;
  spec.sla.p99_bound_us = 20000;

  serving::DaemonOptions options;
  options.admission_enabled = true;
  options.admission_window = 32;

  spec.fleet.threads = kThreadCounts.front();
  const serving::Daemon baseline_daemon(service, spec, options);
  auto baseline = baseline_daemon.run_trace(*workload);
  ASSERT_TRUE(baseline.is_ok());
  const std::vector<std::string> baseline_row =
      serving::serving_csv_row({}, baseline->stats);

  for (std::size_t t = 1; t < kThreadCounts.size(); ++t) {
    spec.fleet.threads = kThreadCounts[t];
    const serving::Daemon daemon(service, spec, options);
    auto other = daemon.run_trace(*workload);
    ASSERT_TRUE(other.is_ok());
    EXPECT_EQ(other->shed, baseline->shed);
    EXPECT_EQ(serving::serving_csv_row({}, other->stats), baseline_row)
        << "threads " << kThreadCounts[t];
    ASSERT_EQ(other->stats.records.size(), baseline->stats.records.size());
    for (std::size_t i = 0; i < other->stats.records.size(); ++i) {
      EXPECT_EQ(other->stats.records[i].id, baseline->stats.records[i].id);
      EXPECT_EQ(other->stats.records[i].instance,
                baseline->stats.records[i].instance);
      EXPECT_EQ(other->stats.records[i].start_us,
                baseline->stats.records[i].start_us);
      EXPECT_EQ(other->stats.records[i].finish_us,
                baseline->stats.records[i].finish_us);
    }
  }
}

}  // namespace
}  // namespace fcad::dse
