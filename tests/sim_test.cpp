#include <gtest/gtest.h>

#include "arch/platform.hpp"
#include "dse/cross_branch.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "nn/zoo/classic_nets.hpp"
#include "sim/ddr.hpp"
#include "sim/simulator.hpp"
#include "sim/stage.hpp"

namespace fcad::sim {
namespace {

const arch::ReorganizedModel& decoder_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(m.is_ok());
    return std::move(m).value();
  }();
  return model;
}

arch::AcceleratorConfig searched_config(const arch::ReorganizedModel& model,
                                        const arch::Platform& platform,
                                        std::vector<int> batches) {
  dse::Customization cust;
  cust.quantization = nn::DataType::kInt8;
  cust.batch_sizes = std::move(batches);
  FCAD_CHECK(cust.normalize(model.num_branches()).is_ok());
  dse::CrossBranchOptions opt;
  opt.population = 30;
  opt.iterations = 5;
  opt.seed = 7;
  opt.freq_mhz = platform.freq_mhz;
  return dse::cross_branch_search(
             model, dse::ResourceBudget::from_platform(platform), cust, opt)
      .config;
}

// ------------------------------------------------------------------- DDR --
TEST(DdrTest, CyclesCeil) {
  DdrModel ddr(64.0);
  EXPECT_EQ(ddr.cycles(0), 0);
  EXPECT_EQ(ddr.cycles(1), 1);
  EXPECT_EQ(ddr.cycles(64), 1);
  EXPECT_EQ(ddr.cycles(65), 2);
}

TEST(DdrTest, CongestionScalesServiceTime) {
  DdrModel fast(64.0, 1.0);
  DdrModel slow(64.0, 2.0);
  EXPECT_EQ(slow.cycles(640), 2 * fast.cycles(640));
}

TEST(DdrTest, CongestionFactorFloorsAtOne) {
  EXPECT_DOUBLE_EQ(DdrModel::congestion_for(1.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(DdrModel::congestion_for(200.0, 100.0), 2.0);
}

TEST(DdrTest, InvalidParamsThrow) {
  EXPECT_THROW(DdrModel(0.0), InternalError);
  EXPECT_THROW(DdrModel(1.0, 0.5), InternalError);
}

// ----------------------------------------------------------- stage model --
TEST(StageSimTest, RowMappingUpsample) {
  StageSimModel m;
  m.conv_rows = 8;
  m.post = StageSimModel::PostMap::kUpsample;
  EXPECT_EQ(m.conv_row_for_final(0), 0);
  EXPECT_EQ(m.conv_row_for_final(1), 0);
  EXPECT_EQ(m.conv_row_for_final(15), 7);
}

TEST(StageSimTest, RowMappingPool) {
  StageSimModel m;
  m.conv_rows = 8;
  m.post = StageSimModel::PostMap::kPool;
  m.pool_stride = 2;
  m.pool_kernel = 2;
  EXPECT_EQ(m.conv_row_for_final(0), 1);  // pool row 0 needs conv rows 0-1
  EXPECT_EQ(m.conv_row_for_final(3), 7);
}

TEST(StageSimTest, NeededInputRowIncludesHalo) {
  StageSimModel m;
  m.kernel = 4;
  m.stride = 1;
  m.in_rows = 64;
  // pad_top = (4-1)/2 via (kernel - stride)/2 = 1: row r needs r+2.
  EXPECT_EQ(m.needed_input_row(0), 2);
  EXPECT_EQ(m.needed_input_row(10), 12);
  EXPECT_EQ(m.needed_input_row(63), 63);  // clamped at the bottom edge
}

TEST(StageSimTest, BuildFromDecoderStage) {
  const auto& model = decoder_model();
  const arch::BranchPipeline& br2 = model.branches[1];
  const int s = br2.stages[1];  // sh_l2 (fat weights -> streamed)
  const StageSimModel m =
      build_stage_sim(model, s, arch::UnitConfig{4, 4, 1},
                      nn::DataType::kInt8, nn::DataType::kInt8);
  EXPECT_GT(m.weight_fetch_bytes, 0);  // 3.1M-parameter kernel streams
  EXPECT_GT(m.bias_bytes_per_row, 0);  // untied bias streams per row
  EXPECT_EQ(m.post, StageSimModel::PostMap::kUpsample);
  EXPECT_EQ(m.producer, br2.stages[0]);
}

// --------------------------------------------------------------- simulate --
TEST(SimulatorTest, AgreesWithAnalyticalWithinFewPercent) {
  const auto& model = decoder_model();
  const arch::Platform zu9cg = arch::platform_zu9cg();
  const auto config = searched_config(model, zu9cg, {1, 2, 2});
  const auto analytical =
      arch::evaluate(model, config, arch::EvalMode::kAnalytical);
  const SimResult simulated = simulate(model, config, zu9cg);
  ASSERT_EQ(simulated.branches.size(), 3u);
  for (std::size_t b = 0; b < 3; ++b) {
    const double est = analytical.branches[b].fps;
    const double real = simulated.branches[b].fps;
    ASSERT_GT(real, 0);
    // Real is slower, but within ~10% (paper's Fig. 6 band is ~3%; we leave
    // headroom for the variance across branches).
    EXPECT_LE(real, est * 1.001) << "branch " << b;
    EXPECT_GE(real, est * 0.90) << "branch " << b;
  }
}

TEST(SimulatorTest, FirstFrameLatencyExceedsSteadyPeriod) {
  const auto& model = decoder_model();
  const arch::Platform zu9cg = arch::platform_zu9cg();
  const auto config = searched_config(model, zu9cg, {1, 1, 1});
  const SimResult r = simulate(model, config, zu9cg);
  for (const BranchSimResult& bs : r.branches) {
    const double period_cycles =
        zu9cg.freq_mhz * 1e6 / bs.fps;  // batch 1
    // Pipeline fill: latency covers the whole chain, period only the
    // bottleneck stage.
    EXPECT_GT(bs.latency_cycles, period_cycles * 0.99);
  }
}

TEST(SimulatorTest, BatchScalesThroughput) {
  const auto& model = decoder_model();
  const arch::Platform zu9cg = arch::platform_zu9cg();
  auto config = searched_config(model, zu9cg, {1, 1, 1});
  const SimResult r1 = simulate(model, config, zu9cg);
  for (auto& br : config.branches) br.batch = 2;
  const SimResult r2 = simulate(model, config, zu9cg);
  for (std::size_t b = 0; b < r1.branches.size(); ++b) {
    EXPECT_NEAR(r2.branches[b].fps, 2 * r1.branches[b].fps,
                0.05 * r2.branches[b].fps);
  }
}

TEST(SimulatorTest, TinyBandwidthCongests) {
  const auto& model = decoder_model();
  arch::Platform starved = arch::platform_zu9cg();
  starved.bw_gbps = 0.05;  // 50 MB/s: the untied-bias streams saturate it
  const auto config = searched_config(model, arch::platform_zu9cg(), {1, 1, 1});
  const SimResult normal = simulate(model, config, arch::platform_zu9cg());
  const SimResult congested = simulate(model, config, starved);
  EXPECT_GT(congested.ddr_congestion, 1.0);
  EXPECT_LT(congested.min_fps, normal.min_fps);
}

TEST(SimulatorTest, StageStatsPopulated) {
  const auto& model = decoder_model();
  const arch::Platform zu9cg = arch::platform_zu9cg();
  const auto config = searched_config(model, zu9cg, {1, 1, 1});
  const SimResult r = simulate(model, config, zu9cg);
  EXPECT_EQ(r.stages.size(), model.fused.stages.size());
  std::int64_t total_busy = 0;
  for (const StageSimStats& ss : r.stages) {
    EXPECT_GE(ss.busy_cycles, 0);
    EXPECT_GE(ss.stall_cycles, 0);
    total_busy += ss.busy_cycles;
  }
  EXPECT_GT(total_busy, 0);
}

TEST(SimulatorTest, EfficiencyConsistentWithFps) {
  const auto& model = decoder_model();
  const arch::Platform zu9cg = arch::platform_zu9cg();
  const auto config = searched_config(model, zu9cg, {1, 2, 2});
  const SimResult r = simulate(model, config, zu9cg);
  EXPECT_GT(r.efficiency, 0.0);
  EXPECT_LE(r.efficiency, 1.0 + 1e-9);
}

TEST(SimulatorTest, SingleBranchBackbone) {
  auto model = arch::reorganize(nn::zoo::tiny_yolo());
  ASSERT_TRUE(model.is_ok());
  const arch::Platform ku115 = arch::platform_ku115();
  const auto config = searched_config(*model, ku115, {1});
  const SimResult r = simulate(*model, config, ku115);
  ASSERT_EQ(r.branches.size(), 1u);
  EXPECT_GT(r.branches[0].fps, 0);
}

TEST(SimulatorTest, RequiresAtLeastTwoFrames) {
  const auto& model = decoder_model();
  const arch::Platform zu9cg = arch::platform_zu9cg();
  const auto config = searched_config(model, zu9cg, {1, 1, 1});
  SimOptions opt;
  opt.frames = 1;
  EXPECT_THROW(simulate(model, config, zu9cg, opt), InternalError);
}

}  // namespace
}  // namespace fcad::sim
