// Elastic serving suite (serving step 8b): autoscaling and dynamic
// resharding layered over the fleet must (1) reproduce the static fleet
// exactly when disabled, (2) strictly improve the tail on the pinned
// flash-crowd scenario when enabled, (3) apply fault schedules with visible
// counters, and (4) stay bit-identical across repeated runs. Named
// elastic_serving_test because tests/elastic_test.cpp covers src/arch.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serving/daemon.hpp"
#include "serving/elastic.hpp"
#include "serving/fleet.hpp"
#include "serving/scenario.hpp"
#include "serving/stats.hpp"
#include "serving/workload.hpp"

namespace fcad::serving {
namespace {

ServiceModel toy_service() {
  ServiceModel service;
  service.branches = {{2, 3000.0}, {4, 5000.0}};
  return service;
}

/// The pinned flash-crowd drift scenario: a 4-instance fleet that holds the
/// SLA at base load, swamped 3x (plus transient users) for the middle half
/// of the trace.
ScenarioSpec flash_scenario() {
  ScenarioSpec spec;
  FlashCrowdSpec flash;
  flash.start_s = 1.0;
  flash.end_s = 3.0;
  flash.rate_multiplier = 3.0;
  flash.extra_users = 4;
  spec.flash.push_back(flash);
  return spec;
}

std::vector<Request> flash_trace() {
  WorkloadOptions wl;
  wl.users = 8;
  wl.branches = 2;
  wl.frame_rate_hz = 40;
  wl.duration_s = 4.0;
  wl.seed = 21;
  auto trace = generate_scenario_workload(wl, flash_scenario());
  FCAD_CHECK(trace.is_ok());
  return std::move(trace).value();
}

ServeSpec flash_spec() {
  ServeSpec spec;
  spec.fleet.instances = 4;
  spec.fleet.shards = 2;
  spec.fleet.threads = 1;
  spec.sla.p99_bound_us = 25000;
  spec.scenario = flash_scenario();
  return spec;
}

ElasticSpec scale_policy() {
  ElasticSpec elastic;
  elastic.autoscale.max_instances = 12;
  elastic.autoscale.high_watermark = 0.6;
  elastic.autoscale.low_watermark = 0.2;
  elastic.autoscale.window_us = 100000;
  elastic.autoscale.cooldown_us = 100000;
  return elastic;
}

TEST(ElasticSpecTest, ValidationRejectsMalformedSpecs) {
  {
    ElasticSpec s;
    s.autoscale.max_instances = 4;
    s.autoscale.low_watermark = 0.9;  // low >= high
    EXPECT_EQ(validate_elastic(s).code(), StatusCode::kInvalidArgument);
  }
  {
    ElasticSpec s;
    s.autoscale.max_instances = 4;
    s.autoscale.min_instances = 8;  // floor above the cap
    EXPECT_EQ(validate_elastic(s).code(), StatusCode::kInvalidArgument);
  }
  {
    ElasticSpec s;
    s.autoscale.max_instances = 4;
    s.autoscale.window_us = 0;
    EXPECT_EQ(validate_elastic(s).code(), StatusCode::kInvalidArgument);
  }
  {
    ElasticSpec s;
    s.reshard.p99_fraction = 0.5;
    s.reshard.max_cells = 1;  // can never split
    EXPECT_EQ(validate_elastic(s).code(), StatusCode::kInvalidArgument);
  }
  {
    ElasticSpec s;
    s.reshard.p99_fraction = 0.5;
    s.reshard.window = 0;
    EXPECT_EQ(validate_elastic(s).code(), StatusCode::kInvalidArgument);
  }
  EXPECT_TRUE(validate_elastic(ElasticSpec{}).is_ok());
  EXPECT_TRUE(validate_elastic(scale_policy()).is_ok());
}

TEST(ElasticSpecTest, StringRoundTripIsStable) {
  ElasticSpec spec = scale_policy();
  spec.reshard.p99_fraction = 0.25;
  spec.reshard.window = 64;
  const std::string text = elastic_to_string(spec);
  EXPECT_EQ(text,
            "scale:max=12,high=0.6,low=0.2,window_us=100000,"
            "cooldown_us=100000,min=1;"
            "reshard:frac=0.25,window=64,cooldown_us=250000,cells=4");
  auto parsed = elastic_from_string(text);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(elastic_to_string(*parsed), text);

  auto none = elastic_from_string("none");
  ASSERT_TRUE(none.is_ok());
  EXPECT_FALSE(none->enabled());
  EXPECT_EQ(elastic_to_string(*none), "none");

  EXPECT_EQ(elastic_from_string("scale:max=4,bogus=1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(elastic_from_string("stretch:by=2").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ElasticSpecTest, RollingP99WindowTracksExactNearestRank) {
  RollingP99Window window(4);
  EXPECT_EQ(window.p99(), 0.0);
  EXPECT_FALSE(window.full());
  window.add(10);
  window.add(20);
  window.add(30);
  EXPECT_FALSE(window.full());
  window.add(40);
  EXPECT_TRUE(window.full());
  EXPECT_EQ(window.p99(), 40.0);
  window.add(5);  // evicts 10; window now {5, 20, 30, 40}
  EXPECT_EQ(window.p99(), 40.0);
  window.add(1);  // evicts 20
  window.add(2);  // evicts 30
  window.add(3);  // evicts 40; window now {5, 1, 2, 3}
  EXPECT_EQ(window.p99(), 5.0);
}

TEST(ElasticPlanTest, DisabledSpecReproducesStaticPartition) {
  auto plans = plan_elastic_shards(ElasticSpec{}, {}, 8, 3);
  ASSERT_TRUE(plans.is_ok());
  ASSERT_EQ(plans->size(), 3u);
  // The classic fair split: floor(8/3) each, remainder to the low shards.
  const int first[] = {0, 3, 6};
  const int count[] = {3, 3, 2};
  for (int s = 0; s < 3; ++s) {
    const ShardElasticPlan& plan = (*plans)[static_cast<std::size_t>(s)];
    EXPECT_EQ(plan.first_instance, first[s]);
    EXPECT_EQ(plan.provisioned, count[s]);
    EXPECT_EQ(plan.initial_active, count[s]) << "all provisioned are active";
    EXPECT_TRUE(plan.faults.empty());
  }
}

TEST(ElasticPlanTest, AutoscaleProvisionsUpToMaxAndActivatesPrefix) {
  auto plans = plan_elastic_shards(scale_policy(), {}, 4, 2);
  ASSERT_TRUE(plans.is_ok());
  ASSERT_EQ(plans->size(), 2u);
  EXPECT_EQ((*plans)[0].provisioned, 6);
  EXPECT_EQ((*plans)[0].initial_active, 2);
  EXPECT_EQ((*plans)[1].first_instance, 6);
  EXPECT_EQ((*plans)[1].provisioned, 6);
  EXPECT_EQ((*plans)[1].initial_active, 2);
}

TEST(ElasticPlanTest, FaultsRouteToOwningShardAsLocalPairs) {
  std::vector<InstanceFault> faults;
  InstanceFault f;
  f.instance = 5;  // shard 1's slice [4, 8) under a 2-way split of 8
  f.fail_s = 1.0;
  f.recover_s = 2.0;
  faults.push_back(f);
  auto plans = plan_elastic_shards(ElasticSpec{}, faults, 8, 2);
  ASSERT_TRUE(plans.is_ok());
  EXPECT_TRUE((*plans)[0].faults.empty());
  ASSERT_EQ((*plans)[1].faults.size(), 2u);
  EXPECT_EQ((*plans)[1].faults[0].local_instance, 1);
  EXPECT_EQ((*plans)[1].faults[0].t_us, 1.0e6);
  EXPECT_TRUE((*plans)[1].faults[0].fail);
  EXPECT_EQ((*plans)[1].faults[1].t_us, 2.0e6);
  EXPECT_FALSE((*plans)[1].faults[1].fail);

  f.instance = 8;  // outside the provisioned pool
  EXPECT_EQ(plan_elastic_shards(ElasticSpec{}, {f}, 8, 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ElasticFleetTest, DisabledPolicyIsBitIdenticalToStaticFleet) {
  const ServiceModel service = toy_service();
  const std::vector<Request> trace = flash_trace();
  ServeSpec spec = flash_spec();
  auto plain = simulate_fleet(service, trace, spec);
  ASSERT_TRUE(plain.is_ok());
  // ElasticSpec{} must not change a single byte of the outcome — the
  // provisioned pool degenerates to the active fleet and no controller is
  // constructed.
  spec.elastic = ElasticSpec{};
  auto elastic_off = simulate_fleet(service, trace, spec);
  ASSERT_TRUE(elastic_off.is_ok());
  EXPECT_EQ(serving_csv_row({}, *plain), serving_csv_row({}, *elastic_off));
  EXPECT_EQ(plain->scale_up_events, 0);
  EXPECT_EQ(plain->reshard_splits, 0);
}

TEST(ElasticFleetTest, AutoscalerAbsorbsTheFlashCrowd) {
  // The headline acceptance pin: on the same seeded flash-crowd trace the
  // static fleet misses the SLA and the elastic fleet meets it, with a
  // strictly better p99 — and the scale events are visible in the stats
  // and the always-on obs counters.
  const ServiceModel service = toy_service();
  const std::vector<Request> trace = flash_trace();
  const ServeSpec off_spec = flash_spec();
  auto off = simulate_fleet(service, trace, off_spec);
  ASSERT_TRUE(off.is_ok());
  EXPECT_FALSE(off->sla_met);
  EXPECT_EQ(off->scale_up_events + off->scale_down_events, 0);

  ServeSpec on_spec = flash_spec();
  on_spec.elastic = scale_policy();
  const std::int64_t scale_ups_before = obs::MetricsRegistry::global()
                                            .counter(
                                                "serving.elastic."
                                                "scale_up_events")
                                            .value();
  auto on = simulate_fleet(service, trace, on_spec);
  ASSERT_TRUE(on.is_ok());
  EXPECT_TRUE(on->sla_met);
  EXPECT_LT(on->latency.p99, off->latency.p99);
  EXPECT_GT(on->scale_up_events, 0);
  EXPECT_GT(on->scale_down_events, 0) << "the crowd leaving scales back in";
  EXPECT_EQ(obs::MetricsRegistry::global()
                    .counter("serving.elastic.scale_up_events")
                    .value() -
                scale_ups_before,
            on->scale_up_events);

  // And the elastic replay is repeatable bit for bit.
  auto again = simulate_fleet(service, trace, on_spec);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(serving_csv_row({}, *on), serving_csv_row({}, *again));
}

TEST(ElasticFleetTest, FaultScheduleFiresAndRecoversWithCounters) {
  const ServiceModel service = toy_service();
  const std::vector<Request> trace = flash_trace();
  ServeSpec spec = flash_spec();
  InstanceFault fault;
  fault.instance = 1;
  fault.fail_s = 0.5;
  fault.recover_s = 2.0;
  spec.scenario.faults.push_back(fault);
  auto stats = simulate_fleet(service, trace, spec);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats->fault_events, 1);
  EXPECT_EQ(stats->recover_events, 1);
  EXPECT_EQ(stats->completed, stats->offered)
      << "a faulted instance parks its work, never loses it";
}

TEST(ElasticFleetTest, ReshardSplitsCellsUnderTailDrift) {
  const ServiceModel service = toy_service();
  WorkloadOptions wl;
  wl.users = 8;
  wl.branches = 2;
  wl.frame_rate_hz = 100;
  wl.duration_s = 2.0;
  wl.seed = 5;
  auto trace = generate_workload(wl);
  ASSERT_TRUE(trace.is_ok());
  ServeSpec spec;
  spec.fleet.instances = 4;
  spec.fleet.shards = 2;
  spec.fleet.threads = 1;
  spec.sla.p99_bound_us = 30000;
  spec.elastic.reshard.p99_fraction = 0.25;
  spec.elastic.reshard.window = 64;
  spec.elastic.reshard.cooldown_us = 100000;
  spec.elastic.reshard.max_cells = 4;
  auto stats = simulate_fleet(service, *trace, spec);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_GT(stats->reshard_splits, 0);
  // max_cells bounds splits per shard: at most (cells - 1) splits each.
  EXPECT_LE(stats->reshard_splits, 2 * (4 - 1));
  EXPECT_EQ(stats->completed, stats->offered);

  auto again = simulate_fleet(service, *trace, spec);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(serving_csv_row({}, *stats), serving_csv_row({}, *again));
}

TEST(ElasticFleetTest, ElasticRunsRoundTripThroughCheckpointText)
{
  // The elastic counters ride the checkpoint/artifact text format.
  const ServiceModel service = toy_service();
  const std::vector<Request> trace = flash_trace();
  ServeSpec spec = flash_spec();
  spec.elastic = scale_policy();
  auto stats = simulate_fleet(service, trace, spec);
  ASSERT_TRUE(stats.is_ok());
  std::stringstream text;
  serving_stats_to_text(text, *stats);
  auto reloaded = serving_stats_from_text(text);
  ASSERT_TRUE(reloaded.is_ok());
  EXPECT_EQ(reloaded->scale_up_events, stats->scale_up_events);
  EXPECT_EQ(reloaded->scale_down_events, stats->scale_down_events);
  EXPECT_EQ(reloaded->reshard_splits, stats->reshard_splits);
  EXPECT_EQ(reloaded->fault_events, stats->fault_events);
  EXPECT_EQ(reloaded->recover_events, stats->recover_events);
}

TEST(ElasticDaemonTest, TracePathMatchesSimulateFleetWithElasticOn) {
  // Replay/live parity extends to elastic fleets: the daemon's online
  // submit path (admission off) must reproduce simulate_fleet bit for bit
  // under the same policy.
  const ServiceModel service = toy_service();
  const std::vector<Request> trace = flash_trace();
  ServeSpec spec = flash_spec();
  spec.elastic = scale_policy();
  auto replay = simulate_fleet(service, trace, spec);
  ASSERT_TRUE(replay.is_ok());
  const Daemon daemon(service, spec, {});
  auto live = daemon.run_trace(trace);
  ASSERT_TRUE(live.is_ok());
  EXPECT_EQ(live->shed, 0);
  EXPECT_EQ(serving_csv_row({}, *replay), serving_csv_row({}, live->stats));
}

TEST(ElasticDaemonTest, ShedsOnlyAfterScaleUpHeadroomIsExhausted) {
  // Admission alone sheds through the flash crowd; with the elastic policy
  // the daemon grows first, so strictly fewer requests are dropped and the
  // scale events show the growth happened.
  const ServiceModel service = toy_service();
  const std::vector<Request> trace = flash_trace();
  DaemonOptions admission;
  admission.admission_enabled = true;
  admission.admission_window = 64;

  const Daemon static_daemon(service, flash_spec(), admission);
  auto static_run = static_daemon.run_trace(trace);
  ASSERT_TRUE(static_run.is_ok());
  EXPECT_GT(static_run->shed, 0);

  ServeSpec elastic_spec = flash_spec();
  elastic_spec.elastic = scale_policy();
  const Daemon elastic_daemon(service, elastic_spec, admission);
  auto elastic_run = elastic_daemon.run_trace(trace);
  ASSERT_TRUE(elastic_run.is_ok());
  EXPECT_LT(elastic_run->shed, static_run->shed);
  EXPECT_GT(elastic_run->stats.scale_up_events, 0);
}

}  // namespace
}  // namespace fcad::serving
