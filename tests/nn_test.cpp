#include <gtest/gtest.h>

#include "nn/builder.hpp"
#include "nn/dtype.hpp"
#include "nn/graph.hpp"
#include "nn/validate.hpp"

namespace fcad::nn {
namespace {

// ----------------------------------------------------------------- dtype --
TEST(DtypeTest, BitsAndBytes) {
  EXPECT_EQ(bits(DataType::kInt8), 8);
  EXPECT_EQ(bits(DataType::kInt16), 16);
  EXPECT_EQ(bytes(DataType::kInt8), 1);
  EXPECT_EQ(bytes(DataType::kInt16), 2);
}

TEST(DtypeTest, DspPackingMatchesPaperBeta) {
  // One DSP48 packs two 8-bit multipliers -> beta = 4 ops; one 16-bit
  // multiplier -> beta = 2 ops. These constants anchor every efficiency
  // number in the reproduction.
  EXPECT_EQ(multipliers_per_dsp(DataType::kInt8), 2);
  EXPECT_EQ(multipliers_per_dsp(DataType::kInt16), 1);
  EXPECT_EQ(beta_ops_per_dsp(DataType::kInt8), 4);
  EXPECT_EQ(beta_ops_per_dsp(DataType::kInt16), 2);
}

TEST(DtypeTest, Names) {
  EXPECT_EQ(to_string(DataType::kInt8), "int8");
  EXPECT_EQ(to_string(DataType::kInt16), "int16");
}

// ----------------------------------------------------------------- shape --
TEST(ShapeTest, ElemsAndEquality) {
  TensorShape s{16, 8, 4};
  EXPECT_EQ(s.elems(), 512);
  EXPECT_EQ(s, (TensorShape{16, 8, 4}));
  EXPECT_NE(s, (TensorShape{16, 4, 8}));
  EXPECT_EQ(s.to_string(), "[16,8,4]");
}

TEST(ShapeTest, ElemsDoesNotOverflowAtHdSizes) {
  TensorShape s{16, 1024, 1024};
  EXPECT_EQ(s.elems(), 16LL * 1024 * 1024);
}

// --------------------------------------------------------------- builder --
TEST(BuilderTest, ShapeInferenceConvSamePadding) {
  GraphBuilder b("t");
  auto in = b.input("x", {3, 32, 32});
  auto c = b.conv2d(in, "c", {.out_ch = 8, .kernel = 3});
  b.output(c, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(g->layer(c).out_shape, (TensorShape{8, 32, 32}));
}

TEST(BuilderTest, ShapeInferenceStridedConv) {
  GraphBuilder b("t");
  auto in = b.input("x", {3, 224, 224});
  auto c = b.conv2d(in, "c", {.out_ch = 64, .kernel = 11, .stride = 4});
  b.output(c, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(g->layer(c).out_shape, (TensorShape{64, 56, 56}));
}

TEST(BuilderTest, ShapeInferenceUpsamplePoolDenseConcat) {
  GraphBuilder b("t");
  auto in1 = b.input("a", {4, 8, 8});
  auto in2 = b.input("b", {3, 8, 8});
  auto cat = b.concat({in1, in2}, "cat");
  auto up = b.upsample2x(cat, "up");
  auto pool = b.max_pool(up, "pool", {.kernel = 2, .stride = 2});
  auto fc = b.dense(pool, "fc", {.out_features = 10});
  b.output(fc, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(g->layer(cat).out_shape, (TensorShape{7, 8, 8}));
  EXPECT_EQ(g->layer(up).out_shape, (TensorShape{7, 16, 16}));
  EXPECT_EQ(g->layer(pool).out_shape, (TensorShape{7, 8, 8}));
  EXPECT_EQ(g->layer(fc).out_shape, (TensorShape{10, 1, 1}));
}

TEST(BuilderTest, ReshapePreservesElements) {
  GraphBuilder b("t");
  auto in = b.input("x", {256, 1, 1});
  auto r = b.reshape(in, "r", {4, 8, 8});
  auto c = b.conv2d(r, "c", {.out_ch = 4, .kernel = 3});
  b.output(c, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(g->layer(r).out_shape, (TensorShape{4, 8, 8}));
}

TEST(BuilderTest, ConsumersTracked) {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto c1 = b.conv2d(in, "c1", {.out_ch = 8, .kernel = 3});
  auto c2 = b.conv2d(c1, "c2", {.out_ch = 8, .kernel = 3});
  auto c3 = b.conv2d(c1, "c3", {.out_ch = 8, .kernel = 3});
  b.output(c2, "y1");
  b.output(c3, "y2");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(g->consumers(c1).size(), 2u);
  EXPECT_EQ(g->consumers(in).size(), 1u);
}

TEST(BuilderTest, TopoOrderIsAscendingIds) {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto c = b.conv2d(in, "c", {.out_ch = 8, .kernel = 3});
  b.output(c, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  const auto order = g->topo_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<LayerId>(i));
  }
}

TEST(BuilderTest, InputAndOutputIdsRecorded) {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto c = b.conv2d(in, "c", {.out_ch = 8, .kernel = 3});
  auto out = b.output(c, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  ASSERT_EQ(g->input_ids().size(), 1u);
  ASSERT_EQ(g->output_ids().size(), 1u);
  EXPECT_EQ(g->input_ids()[0], in);
  EXPECT_EQ(g->output_ids()[0], out);
  EXPECT_EQ(g->layer(out).output().role, "y");
}

// ------------------------------------------------------------ validation --
TEST(ValidateTest, EmptyGraphRejected) {
  GraphBuilder b("empty");
  auto g = std::move(b).build();
  EXPECT_FALSE(g.is_ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, MissingOutputRejected) {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  b.conv2d(in, "c", {.out_ch = 8, .kernel = 3});
  auto g = std::move(b).build();
  EXPECT_FALSE(g.is_ok());
}

TEST(ValidateTest, DanglingLayerRejected) {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto c = b.conv2d(in, "c", {.out_ch = 8, .kernel = 3});
  b.conv2d(in, "dead", {.out_ch = 8, .kernel = 3});  // no consumer
  b.output(c, "y");
  auto g = std::move(b).build();
  ASSERT_FALSE(g.is_ok());
  EXPECT_NE(g.status().message().find("dangling"), std::string::npos);
}

TEST(ValidateTest, BadConvAttrsRejected) {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto c = b.conv2d(in, "c", {.out_ch = 0, .kernel = 3});
  b.output(c, "y");
  auto g = std::move(b).build();
  EXPECT_FALSE(g.is_ok());
}

TEST(ValidateTest, UntiedBiasRequiresBias) {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto c = b.conv2d(in, "c",
                    {.out_ch = 8, .kernel = 3, .untied_bias = true,
                     .bias = false});
  b.output(c, "y");
  auto g = std::move(b).build();
  EXPECT_FALSE(g.is_ok());
}

TEST(ValidateTest, NonPositiveInputShapeRejected) {
  GraphBuilder b("t");
  auto in = b.input("x", {0, 8, 8});
  b.output(in, "y");
  auto g = std::move(b).build();
  EXPECT_FALSE(g.is_ok());
}

TEST(ValidateTest, AttrAccessorOnWrongKindThrows) {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto c = b.conv2d(in, "c", {.out_ch = 8, .kernel = 3});
  b.output(c, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  EXPECT_THROW(g->layer(in).conv(), InternalError);
  EXPECT_THROW(g->layer(c).dense(), InternalError);
}

TEST(ValidateTest, LayerIdOutOfRangeThrows) {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  b.output(in, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  EXPECT_THROW(g->layer(99), InternalError);
  EXPECT_THROW(g->layer(-1), InternalError);
}

}  // namespace
}  // namespace fcad::nn
