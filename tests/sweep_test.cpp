#include <gtest/gtest.h>

#include "arch/platform.hpp"
#include "dse/sweep.hpp"
#include "nn/zoo/avatar_decoder.hpp"

namespace fcad::dse {
namespace {

const arch::ReorganizedModel& decoder_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(m.is_ok());
    return std::move(m).value();
  }();
  return model;
}

SweepOptions fast_sweep() {
  SweepOptions options;
  options.search.population = 20;
  options.search.iterations = 4;
  options.search.seed = 17;
  options.customization.batch_sizes = {1, 1, 1};
  options.customization.priorities = {1, 1, 1};
  return options;
}

TEST(SweepTest, GridCoverage) {
  auto points = quantization_frequency_sweep(
      decoder_model(), arch::platform_zu9cg(), fast_sweep());
  ASSERT_TRUE(points.is_ok()) << points.status().to_string();
  EXPECT_EQ(points->size(), 6u);  // 2 dtypes x 3 frequencies
  int feasible = 0;
  for (const SweepPoint& p : *points) feasible += p.result.feasible;
  EXPECT_EQ(feasible, 6);
}

TEST(SweepTest, FrequencyScalesThroughput) {
  SweepOptions options = fast_sweep();
  options.quantizations = {nn::DataType::kInt8};
  options.frequencies_mhz = {100, 400};
  auto points = quantization_frequency_sweep(
      decoder_model(), arch::platform_zu9cg(), options);
  ASSERT_TRUE(points.is_ok());
  ASSERT_EQ(points->size(), 2u);
  // Same budget, 4x clock: substantially more throughput (not necessarily
  // exactly 4x — the search is stochastic and BW constraints shift).
  EXPECT_GT((*points)[1].result.eval.min_fps,
            2.0 * (*points)[0].result.eval.min_fps);
}

TEST(SweepTest, EightBitDominatesSixteenBitAtSameClock) {
  auto points = quantization_frequency_sweep(
      decoder_model(), arch::platform_zu9cg(), fast_sweep());
  ASSERT_TRUE(points.is_ok());
  double fps8 = 0, fps16 = 0;
  for (const SweepPoint& p : *points) {
    if (p.freq_mhz != 200.0) continue;
    (p.quantization == nn::DataType::kInt8 ? fps8 : fps16) =
        p.result.eval.min_fps;
  }
  EXPECT_GT(fps8, fps16);  // DSP packing doubles the lanes
}

TEST(SweepTest, ParetoFrontierNonEmptyAndConsistent) {
  auto points = quantization_frequency_sweep(
      decoder_model(), arch::platform_zu9cg(), fast_sweep());
  ASSERT_TRUE(points.is_ok());
  int frontier = 0;
  for (const SweepPoint& p : *points) frontier += p.pareto_optimal;
  EXPECT_GE(frontier, 1);
  // No frontier point may dominate another frontier point.
  for (const SweepPoint& a : *points) {
    if (!a.pareto_optimal) continue;
    for (const SweepPoint& b : *points) {
      if (&a == &b || !b.pareto_optimal) continue;
      const bool dominates = a.result.eval.min_fps > b.result.eval.min_fps &&
                             a.result.eval.dsps < b.result.eval.dsps;
      EXPECT_FALSE(dominates && b.pareto_optimal);
    }
  }
}

TEST(SweepTest, EmptyGridRejected) {
  SweepOptions options = fast_sweep();
  options.frequencies_mhz = {};
  auto points = quantization_frequency_sweep(
      decoder_model(), arch::platform_zu9cg(), options);
  EXPECT_FALSE(points.is_ok());
}

TEST(SweepTest, NegativeFrequencyRejected) {
  SweepOptions options = fast_sweep();
  options.frequencies_mhz = {-5};
  auto points = quantization_frequency_sweep(
      decoder_model(), arch::platform_zu9cg(), options);
  EXPECT_FALSE(points.is_ok());
}

}  // namespace
}  // namespace fcad::dse
