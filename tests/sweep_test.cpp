#include <gtest/gtest.h>

#include "arch/platform.hpp"
#include "dse/search_driver.hpp"
#include "nn/zoo/avatar_decoder.hpp"

namespace fcad::dse {
namespace {

const arch::ReorganizedModel& decoder_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(m.is_ok());
    return std::move(m).value();
  }();
  return model;
}

SearchSpec fast_sweep() {
  SearchSpec spec;
  spec.kind = SearchKind::kSweep;
  spec.search.population = 20;
  spec.search.iterations = 4;
  spec.search.seed = 17;
  spec.customization.batch_sizes = {1, 1, 1};
  spec.customization.priorities = {1, 1, 1};
  return spec;
}

StatusOr<std::vector<SweepPoint>> sweep(const SearchSpec& spec) {
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  if (!outcome.is_ok()) return outcome.status();
  return std::move(outcome->sweep);
}

TEST(SweepTest, GridCoverage) {
  auto points = sweep(fast_sweep());
  ASSERT_TRUE(points.is_ok()) << points.status().to_string();
  EXPECT_EQ(points->size(), 6u);  // 2 dtypes x 3 frequencies
  int feasible = 0;
  for (const SweepPoint& p : *points) feasible += p.result.feasible;
  EXPECT_EQ(feasible, 6);
}

TEST(SweepTest, FrequencyScalesThroughput) {
  SearchSpec spec = fast_sweep();
  spec.sweep.quantizations = {nn::DataType::kInt8};
  spec.sweep.frequencies_mhz = {100, 400};
  auto points = sweep(spec);
  ASSERT_TRUE(points.is_ok());
  ASSERT_EQ(points->size(), 2u);
  // Same budget, 4x clock: substantially more throughput (not necessarily
  // exactly 4x — the search is stochastic and BW constraints shift).
  EXPECT_GT((*points)[1].result.eval.min_fps,
            2.0 * (*points)[0].result.eval.min_fps);
}

TEST(SweepTest, EightBitDominatesSixteenBitAtSameClock) {
  auto points = sweep(fast_sweep());
  ASSERT_TRUE(points.is_ok());
  double fps8 = 0, fps16 = 0;
  for (const SweepPoint& p : *points) {
    if (p.freq_mhz != 200.0) continue;
    (p.quantization == nn::DataType::kInt8 ? fps8 : fps16) =
        p.result.eval.min_fps;
  }
  EXPECT_GT(fps8, fps16);  // DSP packing doubles the lanes
}

TEST(SweepTest, ParetoFrontierNonEmptyAndConsistent) {
  auto points = sweep(fast_sweep());
  ASSERT_TRUE(points.is_ok());
  int frontier = 0;
  for (const SweepPoint& p : *points) frontier += p.pareto_optimal;
  EXPECT_GE(frontier, 1);
  // No frontier point may dominate another frontier point.
  for (const SweepPoint& a : *points) {
    if (!a.pareto_optimal) continue;
    for (const SweepPoint& b : *points) {
      if (&a == &b || !b.pareto_optimal) continue;
      const bool dominates = a.result.eval.min_fps > b.result.eval.min_fps &&
                             a.result.eval.dsps < b.result.eval.dsps;
      EXPECT_FALSE(dominates && b.pareto_optimal);
    }
  }
}

TEST(SweepTest, EmptyGridRejected) {
  SearchSpec spec = fast_sweep();
  spec.sweep.frequencies_mhz = {};
  auto points = sweep(spec);
  EXPECT_FALSE(points.is_ok());
}

TEST(SweepTest, NegativeFrequencyRejected) {
  SearchSpec spec = fast_sweep();
  spec.sweep.frequencies_mhz = {-5};
  auto points = sweep(spec);
  EXPECT_FALSE(points.is_ok());
}

}  // namespace
}  // namespace fcad::dse
