// Scenario-generator suite (serving step 8a): deterministic workload
// shaping — diurnal drift, flash crowds, churn, fault schedules — must be a
// pure function of (options, spec), reduce to the base generator when no
// clause shapes arrivals, and reject every malformed spec at the boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "serving/scenario.hpp"
#include "serving/workload.hpp"

namespace fcad::serving {
namespace {

WorkloadOptions base_options() {
  WorkloadOptions wl;
  wl.users = 4;
  wl.branches = 2;
  wl.frame_rate_hz = 30;
  wl.duration_s = 3.0;
  wl.seed = 77;
  return wl;
}

ScenarioSpec composed_spec() {
  ScenarioSpec spec;
  spec.diurnal.period_s = 2.0;
  spec.diurnal.amplitude = 0.5;
  FlashCrowdSpec flash;
  flash.start_s = 1.0;
  flash.end_s = 2.0;
  flash.rate_multiplier = 2.0;
  flash.extra_users = 2;
  spec.flash.push_back(flash);
  ChurnEvent churn;
  churn.user = 1;
  churn.join_s = 0.5;
  churn.leave_s = 2.5;
  spec.churn.push_back(churn);
  return spec;
}

void expect_same_trace(const std::vector<Request>& a,
                       const std::vector<Request>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].branch, b[i].branch);
    EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
  }
}

TEST(ScenarioTest, TrivialSpecMatchesBaseGeneratorBitExactly) {
  // An empty scenario must not even perturb the RNG consumption pattern:
  // the thinning path is bypassed entirely and the trace is the base
  // generator's, byte for byte.
  const WorkloadOptions wl = base_options();
  auto base = generate_workload(wl);
  ASSERT_TRUE(base.is_ok());
  auto shaped = generate_scenario_workload(wl, ScenarioSpec{});
  ASSERT_TRUE(shaped.is_ok());
  expect_same_trace(*base, *shaped);
}

TEST(ScenarioTest, FaultOnlySpecLeavesArrivalsUntouched) {
  // A fault schedule changes the fleet, never the trace.
  const WorkloadOptions wl = base_options();
  ScenarioSpec spec;
  InstanceFault fault;
  fault.instance = 0;
  fault.fail_s = 1.0;
  fault.recover_s = 2.0;
  spec.faults.push_back(fault);
  EXPECT_TRUE(spec.enabled());
  EXPECT_FALSE(spec.shapes_arrivals());
  auto base = generate_workload(wl);
  ASSERT_TRUE(base.is_ok());
  auto shaped = generate_scenario_workload(wl, spec);
  ASSERT_TRUE(shaped.is_ok());
  expect_same_trace(*base, *shaped);
}

TEST(ScenarioTest, ComposedScenarioMatchesGolden) {
  // Pinned output of the composed diurnal+flash+churn generator at seed 77
  // (captured at introduction). A change here means the seeded draw order
  // changed — a reproducibility break, not a tolerable drift.
  auto trace = generate_scenario_workload(base_options(), composed_spec());
  ASSERT_TRUE(trace.is_ok());
  ASSERT_EQ(trace->size(), 1104u);
  EXPECT_EQ((*trace)[0].id, 0);
  EXPECT_EQ((*trace)[0].user, 2);
  EXPECT_EQ((*trace)[0].branch, 0);
  EXPECT_EQ((*trace)[0].arrival_us, 16659.257986970755);
  EXPECT_EQ((*trace)[1].id, 1);
  EXPECT_EQ((*trace)[1].user, 2);
  EXPECT_EQ((*trace)[1].branch, 1);
  EXPECT_EQ((*trace)[1].arrival_us, 16659.257986970755);
  EXPECT_EQ((*trace)[2].id, 2);
  EXPECT_EQ((*trace)[2].user, 2);
  EXPECT_EQ((*trace)[2].branch, 0);
  EXPECT_EQ((*trace)[2].arrival_us, 19125.89822731457);
  EXPECT_EQ(trace->back().id, 1103);
  EXPECT_EQ(trace->back().user, 0);
  EXPECT_EQ(trace->back().branch, 1);
  EXPECT_EQ(trace->back().arrival_us, 2996030.723373807);
  double sum = 0;
  for (const Request& r : *trace) sum += r.arrival_us;
  EXPECT_EQ(sum, 1664015915.2813795);
}

TEST(ScenarioTest, GenerationIsRepeatable) {
  auto a = generate_scenario_workload(base_options(), composed_spec());
  auto b = generate_scenario_workload(base_options(), composed_spec());
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  expect_same_trace(*a, *b);
}

TEST(ScenarioTest, StringRoundTripIsStable) {
  const ScenarioSpec spec = composed_spec();
  const std::string text = scenario_to_string(spec);
  EXPECT_EQ(text,
            "diurnal:period=2,amp=0.5,phase=0;"
            "flash:start=1,end=2,rate=2,users=2;"
            "churn:user=1,join=0.5,leave=2.5");
  auto parsed = scenario_from_string(text);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(scenario_to_string(*parsed), text);

  auto none = scenario_from_string("none");
  ASSERT_TRUE(none.is_ok());
  EXPECT_FALSE(none->enabled());
  EXPECT_EQ(scenario_to_string(*none), "none");

  ScenarioSpec faulty;
  InstanceFault fault;
  fault.instance = 3;
  fault.fail_s = 1.5;
  fault.recover_s = 4.0;
  faulty.faults.push_back(fault);
  auto fault_rt = scenario_from_string(scenario_to_string(faulty));
  ASSERT_TRUE(fault_rt.is_ok());
  ASSERT_EQ(fault_rt->faults.size(), 1u);
  EXPECT_EQ(fault_rt->faults[0].instance, 3);
  EXPECT_EQ(fault_rt->faults[0].fail_s, 1.5);
  EXPECT_EQ(fault_rt->faults[0].recover_s, 4.0);
}

TEST(ScenarioTest, ValidationRejectsMalformedSpecs) {
  const WorkloadOptions wl = base_options();
  {
    ScenarioSpec s;
    s.diurnal.period_s = 1.0;
    s.diurnal.amplitude = 1.0;  // rate would hit zero: rejected
    EXPECT_EQ(generate_scenario_workload(wl, s).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    ScenarioSpec s;
    FlashCrowdSpec f;
    f.start_s = 2.0;
    f.end_s = 1.0;  // end <= start
    f.rate_multiplier = 2.0;
    s.flash.push_back(f);
    EXPECT_EQ(generate_scenario_workload(wl, s).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    ScenarioSpec s;
    FlashCrowdSpec f;  // rate 1, users 0: a window with no effect
    f.start_s = 0.5;
    f.end_s = 1.0;
    s.flash.push_back(f);
    EXPECT_EQ(generate_scenario_workload(wl, s).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    ScenarioSpec s;
    ChurnEvent c;
    c.user = 0;
    c.join_s = 2.0;
    c.leave_s = 1.0;  // leave <= join
    s.churn.push_back(c);
    EXPECT_EQ(generate_scenario_workload(wl, s).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    ScenarioSpec s;
    InstanceFault f;
    f.instance = 0;
    f.fail_s = 2.0;
    f.recover_s = 2.0;  // recover must be strictly after fail
    s.faults.push_back(f);
    EXPECT_EQ(generate_scenario_workload(wl, s).status().code(),
              StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(scenario_from_string("flash:start=0,end=1,rate=2,bogus=1")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(scenario_from_string("tide:high=1").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ScenarioTest, TraceArrivalsCannotBeShaped) {
  WorkloadOptions wl = base_options();
  wl.process = ArrivalProcess::kTrace;
  wl.trace_arrivals_us = {0, 1000, 2000};
  wl.target_requests = 0;
  ScenarioSpec s;
  s.diurnal.period_s = 1.0;
  s.diurnal.amplitude = 0.3;
  EXPECT_EQ(generate_scenario_workload(wl, s).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ScenarioTest, RateMultiplierComposesClauses) {
  ScenarioSpec s = composed_spec();
  // Diurnal sine at t=0 is exactly 1; inside the flash window the step
  // multiplier stacks on top of it; the window is half-open at the end.
  EXPECT_EQ(scenario_rate_multiplier(ScenarioSpec{}, 0.0), 1.0);
  EXPECT_EQ(scenario_rate_multiplier(s, 0.0), 1.0);
  const double quarter = 0.5e6;  // period 2 s: sine peak at t = 0.5 s
  EXPECT_NEAR(scenario_rate_multiplier(s, quarter), 1.5, 1e-12);
  const double in_flash = 1.5e6;  // sine trough x flash step
  EXPECT_NEAR(scenario_rate_multiplier(s, in_flash), 0.5 * 2.0, 1e-12);
  EXPECT_NEAR(scenario_rate_multiplier(s, 2.0e6), 1.0, 1e-12)
      << "flash window is half-open: t = end is outside";
}

TEST(ScenarioTest, ChurnBoundsUserActivity) {
  const WorkloadOptions wl = base_options();
  ScenarioSpec s;
  ChurnEvent c;
  c.user = 1;
  c.join_s = 0.5;
  c.leave_s = 2.5;
  s.churn.push_back(c);
  auto trace = generate_scenario_workload(wl, s);
  ASSERT_TRUE(trace.is_ok());
  bool saw_user = false;
  for (const Request& r : *trace) {
    if (r.user != 1) continue;
    saw_user = true;
    EXPECT_GE(r.arrival_us, 0.5e6);
    EXPECT_LT(r.arrival_us, 2.5e6);
  }
  EXPECT_TRUE(saw_user);
}

TEST(ScenarioTest, FlashCrowdAddsTransientUsersInWindowOnly) {
  const WorkloadOptions wl = base_options();
  ScenarioSpec s;
  FlashCrowdSpec f;
  f.start_s = 1.0;
  f.end_s = 2.0;
  f.rate_multiplier = 1.5;
  f.extra_users = 3;
  s.flash.push_back(f);
  EXPECT_EQ(s.extra_users(), 3);
  auto trace = generate_scenario_workload(wl, s);
  ASSERT_TRUE(trace.is_ok());
  bool saw_extra = false;
  for (const Request& r : *trace) {
    if (r.user < wl.users) continue;
    saw_extra = true;
    EXPECT_LT(r.user, wl.users + 3);
    EXPECT_GE(r.arrival_us, 1.0e6);
    EXPECT_LT(r.arrival_us, 2.0e6);
  }
  EXPECT_TRUE(saw_extra);
}

TEST(ScenarioTest, DiurnalModulationShiftsLoadAcrossHalves) {
  // Period == duration with a positive first half-wave: the first half of
  // the trace must carry strictly more arrivals than the second.
  WorkloadOptions wl = base_options();
  wl.duration_s = 2.0;
  ScenarioSpec s;
  s.diurnal.period_s = 2.0;
  s.diurnal.amplitude = 0.8;
  auto trace = generate_scenario_workload(wl, s);
  ASSERT_TRUE(trace.is_ok());
  std::int64_t first_half = 0, second_half = 0;
  for (const Request& r : *trace) {
    (r.arrival_us < 1.0e6 ? first_half : second_half) += 1;
  }
  EXPECT_GT(first_half, second_half);
}

TEST(ScenarioTest, TargetRequestsResolveAcrossShapedStreams) {
  WorkloadOptions wl = base_options();
  wl.duration_s = 0;
  wl.target_requests = 500;
  auto trace = generate_scenario_workload(wl, composed_spec());
  ASSERT_TRUE(trace.is_ok());
  EXPECT_EQ(static_cast<std::int64_t>(trace->size()), 500);
  EXPECT_TRUE(std::is_sorted(trace->begin(), trace->end(),
                             [](const Request& a, const Request& b) {
                               return a.arrival_us < b.arrival_us;
                             }));
  // Dense ids in arrival order — the same contract the base generator pins.
  for (std::size_t i = 0; i < trace->size(); ++i) {
    EXPECT_EQ((*trace)[i].id, static_cast<std::int64_t>(i));
  }
}

TEST(ScenarioTest, UnreachableTargetIsRejected) {
  // Every stream goes silent after 1 s; a target beyond what the active
  // windows can produce must fail loudly instead of spinning forever.
  WorkloadOptions wl = base_options();
  wl.duration_s = 0;
  wl.target_requests = 1000000;
  ScenarioSpec s;
  for (int u = 0; u < wl.users; ++u) {
    ChurnEvent c;
    c.user = u;
    c.join_s = 0;
    c.leave_s = 1.0;
    s.churn.push_back(c);
  }
  EXPECT_EQ(generate_scenario_workload(wl, s).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fcad::serving
