#include <gtest/gtest.h>

#include "nn/serialize.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "nn/zoo/classic_nets.hpp"

namespace fcad::nn {
namespace {

void expect_roundtrip(const Graph& g) {
  const std::string text = to_text(g);
  auto parsed = from_text(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->name(), g.name());
  ASSERT_EQ(parsed->size(), g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    const Layer& a = g.layers()[i];
    const Layer& b = parsed->layers()[i];
    EXPECT_EQ(a.kind, b.kind) << "layer " << i;
    EXPECT_EQ(a.inputs, b.inputs) << "layer " << i;
    EXPECT_EQ(a.out_shape, b.out_shape) << "layer " << i;
  }
  // Idempotence: serializing the parse gives the same text.
  EXPECT_EQ(to_text(*parsed), text);
}

TEST(SerializeTest, RoundTripAvatarDecoder) {
  expect_roundtrip(zoo::avatar_decoder());
}

TEST(SerializeTest, RoundTripMimicDecoder) {
  expect_roundtrip(zoo::mimic_decoder());
}

TEST(SerializeTest, RoundTripClassicNets) {
  for (const Graph& g : zoo::calibration_benchmarks()) {
    expect_roundtrip(g);
  }
}

TEST(SerializeTest, RoundTripPreservesUntiedBias) {
  const Graph g = zoo::avatar_decoder();
  auto parsed = from_text(to_text(g));
  ASSERT_TRUE(parsed.is_ok());
  int untied = 0;
  for (const Layer& layer : parsed->layers()) {
    if (layer.kind == LayerKind::kConv2d && layer.conv().untied_bias) {
      ++untied;
    }
  }
  EXPECT_EQ(untied, 18);  // every conv of the decoder is customized
}

TEST(SerializeTest, CommentsAndBlankLinesIgnored) {
  auto g = from_text(
      "# a comment\n"
      "graph tiny\n"
      "\n"
      "0 input x 4 8 8   # trailing comment\n"
      "1 conv2d c in=0 8 3 1 0 1\n"
      "2 output y in=1\n");
  ASSERT_TRUE(g.is_ok()) << g.status().to_string();
  EXPECT_EQ(g->size(), 3u);
}

TEST(SerializeTest, MissingHeaderRejected) {
  auto g = from_text("0 input x 4 8 8\n");
  ASSERT_FALSE(g.is_ok());
  EXPECT_NE(g.status().message().find("graph"), std::string::npos);
}

TEST(SerializeTest, DuplicateHeaderRejected) {
  auto g = from_text("graph a\ngraph b\n");
  EXPECT_FALSE(g.is_ok());
}

TEST(SerializeTest, UnknownKindRejected) {
  auto g = from_text("graph t\n0 input x 4 8 8\n1 warp c in=0\n");
  ASSERT_FALSE(g.is_ok());
  EXPECT_NE(g.status().message().find("unknown layer kind"),
            std::string::npos);
}

TEST(SerializeTest, UnknownInputIdRejected) {
  auto g = from_text("graph t\n0 input x 4 8 8\n1 conv2d c in=9 8 3 1 0 1\n");
  ASSERT_FALSE(g.is_ok());
  EXPECT_NE(g.status().message().find("unknown input id"), std::string::npos);
}

TEST(SerializeTest, BadIntegerRejected) {
  auto g = from_text("graph t\n0 input x four 8 8\n");
  ASSERT_FALSE(g.is_ok());
  EXPECT_NE(g.status().message().find("bad integer"), std::string::npos);
}

TEST(SerializeTest, TruncatedLineRejected) {
  auto g = from_text("graph t\n0 input x 4 8\n");
  EXPECT_FALSE(g.is_ok());
}

TEST(SerializeTest, ValidationStillAppliesAfterParse) {
  // Structurally parsable but semantically invalid (dangling conv).
  auto g = from_text(
      "graph t\n"
      "0 input x 4 8 8\n"
      "1 conv2d c in=0 8 3 1 0 1\n"
      "2 conv2d dead in=0 8 3 1 0 1\n"
      "3 output y in=1\n");
  ASSERT_FALSE(g.is_ok());
  EXPECT_NE(g.status().message().find("dangling"), std::string::npos);
}

TEST(SerializeTest, ErrorsReportLineNumbers) {
  auto g = from_text("graph t\n0 input x 4 8 8\n1 bogus c in=0\n");
  ASSERT_FALSE(g.is_ok());
  EXPECT_NE(g.status().message().find("line 3"), std::string::npos);
}

}  // namespace
}  // namespace fcad::nn
