#include <gtest/gtest.h>

#include "arch/platform.hpp"
#include "dse/fitness.hpp"
#include "dse/in_branch.hpp"
#include "dse/search_driver.hpp"
#include "nn/builder.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "nn/zoo/classic_nets.hpp"

namespace fcad::dse {
namespace {

const arch::ReorganizedModel& decoder_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(m.is_ok());
    return std::move(m).value();
  }();
  return model;
}

// ---------------------------------------------------------- customization --
TEST(CustomizationTest, DefaultsExpand) {
  Customization c;
  ASSERT_TRUE(c.normalize(3).is_ok());
  EXPECT_EQ(c.batch_sizes, (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(c.priorities, (std::vector<double>{1, 1, 1}));
}

TEST(CustomizationTest, ArityMismatchRejected) {
  Customization c;
  c.batch_sizes = {1, 2};
  EXPECT_FALSE(c.normalize(3).is_ok());
}

TEST(CustomizationTest, NonPositiveBatchRejected) {
  Customization c;
  c.batch_sizes = {1, 0, 2};
  EXPECT_FALSE(c.normalize(3).is_ok());
}

TEST(CustomizationTest, NegativePriorityRejected) {
  Customization c;
  c.priorities = {1.0, -1.0, 1.0};
  EXPECT_FALSE(c.normalize(3).is_ok());
}

TEST(CustomizationTest, ZeroPriorityRejectedWithBranchIndex) {
  Customization c;
  c.priorities = {1.0, 1.0, 0.0};
  const Status s = c.normalize(3);
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("branch 2"), std::string::npos) << s.message();
}

TEST(CustomizationTest, NormalizeCanonicalizesDatapath) {
  Customization c;
  c.quantization = nn::DataType::kInt16;
  ASSERT_TRUE(c.normalize(2).is_ok());
  EXPECT_EQ(c.datapath, "pipelined-int16");  // derived from the shim field

  Customization d;
  d.datapath = "staged-int8x4";
  ASSERT_TRUE(d.normalize(2).is_ok());
  EXPECT_EQ(d.resolved_datapath(),
            (arch::Datapath{arch::MacStyle::kStaged, nn::DataType::kInt8,
                            nn::DataType::kInt4}));
}

TEST(CustomizationTest, BadDatapathRejected) {
  Customization c;
  c.datapath = "systolic-int8";
  const Status s = c.normalize(2);
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("unknown datapath"), std::string::npos)
      << s.message();
}

// --------------------------------------------------------- design space --
TEST(DesignSpaceTest, StatsCountDimensions) {
  const DesignSpaceStats stats = design_space_stats(decoder_model());
  EXPECT_EQ(stats.branches, 3);
  EXPECT_EQ(stats.stages, 18);
  // datapath + batch per branch + 3 per stage
  EXPECT_EQ(stats.dimensions, 1 + 3 + 3 * 18);
  EXPECT_GT(stats.log10_configs, 20.0);  // a genuinely huge space
}

TEST(DesignSpaceTest, DistributionSlice) {
  ResourceDistribution rd;
  rd.c_frac = {0.5, 0.3, 0.2};
  rd.m_frac = {0.2, 0.5, 0.3};
  rd.bw_frac = {0.1, 0.8, 0.1};
  const ResourceBudget budget{1000, 500, 10};
  const ResourceBudget s1 = rd.slice(budget, 1);
  EXPECT_DOUBLE_EQ(s1.c, 300);
  EXPECT_DOUBLE_EQ(s1.m, 250);
  EXPECT_DOUBLE_EQ(s1.bw, 8);
}

// -------------------------------------------------------------- fitness --
TEST(FitnessTest, VarianceOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(variance({5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
}

TEST(FitnessTest, VarianceHandValue) {
  EXPECT_DOUBLE_EQ(variance({2, 4, 6}), 8.0 / 3.0);
}

TEST(FitnessTest, PriorityWeightedSum) {
  // alpha = 0 isolates S = sum fps_j * P_j.
  FitnessParams p;
  p.alpha = 0;
  EXPECT_DOUBLE_EQ(fitness_score({10, 20}, {1, 2}, 0, p), 50.0);
}

TEST(FitnessTest, VariancePenaltyPrefersBalance) {
  FitnessParams p;
  p.alpha = 1.0;
  const double balanced = fitness_score({30, 30}, {1, 1}, 0, p);
  const double skewed = fitness_score({10, 50}, {1, 1}, 0, p);
  EXPECT_GT(balanced, skewed);  // same sum, lower variance wins
}

TEST(FitnessTest, InfeasibleNeverBeatsFeasible) {
  FitnessParams p;
  const double feasible = fitness_score({1, 1, 1}, {1, 1, 1}, 0, p);
  const double infeasible = fitness_score({1000, 1000, 1000}, {1, 1, 1}, 1, p);
  EXPECT_GT(feasible, infeasible);
}

// ------------------------------------------------------------ in-branch --
TEST(InBranchTest, GenerousBudgetMeetsBatchTarget) {
  const ResourceBudget slice{2000, 1500, 10.0};
  const InBranchResult r =
      in_branch_optimize(decoder_model(), 0, slice, 2, nn::DataType::kInt8,
                         nn::DataType::kInt8, 200.0);
  EXPECT_TRUE(r.met_batch_target);
  EXPECT_EQ(r.config.batch, 2);
  EXPECT_EQ(r.config.units.size(), 6u);
  EXPECT_LE(r.c_used, slice.c);
  EXPECT_LE(r.m_used, slice.m);
  EXPECT_LE(r.bw_used, slice.bw + 1e-9);
}

TEST(InBranchTest, StarvedBudgetReportsUnmet) {
  const ResourceBudget slice{4, 10, 0.01};
  const InBranchResult r =
      in_branch_optimize(decoder_model(), 1, slice, 2, nn::DataType::kInt8,
                         nn::DataType::kInt8, 200.0);
  EXPECT_FALSE(r.met_batch_target);
  // Even then the config is structurally valid (>= 1 parallelism).
  for (const arch::UnitConfig& u : r.config.units) {
    EXPECT_GE(u.lanes(), 1);
  }
}

TEST(InBranchTest, TighterBudgetNeverFaster) {
  const ResourceBudget big{2000, 1200, 12.8};
  const ResourceBudget small{200, 400, 1.0};
  const auto rb = in_branch_optimize(decoder_model(), 1, big, 1,
                                     nn::DataType::kInt8,
                                     nn::DataType::kInt8, 200.0);
  const auto rs = in_branch_optimize(decoder_model(), 1, small, 1,
                                     nn::DataType::kInt8,
                                     nn::DataType::kInt8, 200.0);
  EXPECT_LE(rb.bottleneck_cycles, rs.bottleneck_cycles);
}

TEST(InBranchTest, HalvingLoopConvergesOnTightBudget) {
  const ResourceBudget slice{64, 400, 0.5};
  const InBranchResult r =
      in_branch_optimize(decoder_model(), 1, slice, 1, nn::DataType::kInt8,
                         nn::DataType::kInt8, 200.0);
  EXPECT_GT(r.halvings, 0);  // the greedy search actually had to back off
  EXPECT_LE(r.c_used, slice.c);
}

TEST(InBranchTest, EmptyBranchIsTriviallyFeasible) {
  // A model where one branch owns nothing: single-output chain has one
  // branch owning everything, so build a two-output graph where branch 1
  // fully contains branch 0... simplest: geometry branch of the decoder is
  // never empty, so synthesize the edge case directly.
  nn::GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto c1 = b.conv2d(in, "c1", {.out_ch = 64, .kernel = 3});
  b.output(c1, "small");  // branch 0 ends at the shared conv
  auto c2 = b.conv2d(c1, "c2", {.out_ch = 64, .kernel = 3});
  b.output(c2, "big");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  auto model = arch::reorganize(*g);
  ASSERT_TRUE(model.is_ok());
  // Branch "small" shares c1, owned by "big" (higher demand) -> owns nothing.
  const ResourceBudget slice{10, 10, 0.1};
  int empty_branch = model->branches[0].stages.empty() ? 0 : 1;
  const InBranchResult r =
      in_branch_optimize(*model, empty_branch, slice, 3, nn::DataType::kInt8,
                         nn::DataType::kInt8, 200.0);
  EXPECT_TRUE(r.met_batch_target);
  EXPECT_EQ(r.c_used, 0);
}

// ----------------------------------------------------------- cross-branch --
CrossBranchOptions fast_options(std::uint64_t seed = 1) {
  CrossBranchOptions opt;
  opt.population = 30;
  opt.iterations = 6;
  opt.seed = seed;
  return opt;
}

Customization decoder_customization() {
  Customization c;
  c.quantization = nn::DataType::kInt8;
  c.batch_sizes = {1, 2, 2};
  c.priorities = {1, 1, 1};
  return c;
}

TEST(CrossBranchTest, FindsFeasibleDesignOnZu9cg) {
  const auto result = cross_branch_search(
      decoder_model(),
      ResourceBudget::from_platform(arch::platform_zu9cg()),
      decoder_customization(), fast_options());
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(result.eval.min_fps, 10.0);
  // Budget respected after quantized re-evaluation.
  EXPECT_LE(result.eval.dsps, 2520);
  EXPECT_LE(result.eval.brams, 1824);
}

TEST(CrossBranchTest, BatchCustomizationHonored) {
  const auto result = cross_branch_search(
      decoder_model(),
      ResourceBudget::from_platform(arch::platform_zu9cg()),
      decoder_customization(), fast_options());
  ASSERT_EQ(result.config.branches.size(), 3u);
  EXPECT_EQ(result.config.branches[0].batch, 1);
  EXPECT_EQ(result.config.branches[1].batch, 2);
  EXPECT_EQ(result.config.branches[2].batch, 2);
}

TEST(CrossBranchTest, GlobalBestMonotonicallyImproves) {
  const auto result = cross_branch_search(
      decoder_model(),
      ResourceBudget::from_platform(arch::platform_zu9cg()),
      decoder_customization(), fast_options());
  const auto& history = result.trace.best_fitness;
  ASSERT_EQ(history.size(), 6u);
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_GE(history[i], history[i - 1]);
  }
}

TEST(CrossBranchTest, DeterministicForSameSeed) {
  const auto a = cross_branch_search(
      decoder_model(),
      ResourceBudget::from_platform(arch::platform_zu9cg()),
      decoder_customization(), fast_options(99));
  const auto b = cross_branch_search(
      decoder_model(),
      ResourceBudget::from_platform(arch::platform_zu9cg()),
      decoder_customization(), fast_options(99));
  EXPECT_DOUBLE_EQ(a.fitness, b.fitness);
  EXPECT_EQ(a.eval.dsps, b.eval.dsps);
  EXPECT_EQ(a.trace.convergence_iteration, b.trace.convergence_iteration);
}

TEST(CrossBranchTest, PriorityShiftsResources) {
  Customization texture_heavy = decoder_customization();
  texture_heavy.priorities = {0.1, 10.0, 0.1};
  Customization geometry_heavy = decoder_customization();
  geometry_heavy.priorities = {10.0, 0.1, 0.1};
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  const auto t = cross_branch_search(decoder_model(), budget, texture_heavy,
                                     fast_options(5));
  const auto g = cross_branch_search(decoder_model(), budget, geometry_heavy,
                                     fast_options(5));
  // Geometry-prioritized search gives Br.1 at least as high FPS as the
  // texture-prioritized one does.
  EXPECT_GE(g.eval.branches[0].fps, t.eval.branches[0].fps);
}

TEST(CrossBranchTest, BiggerBudgetNeverWorse) {
  const auto small = cross_branch_search(
      decoder_model(), ResourceBudget::from_platform(arch::platform_z7045()),
      decoder_customization(), fast_options(3));
  const auto big = cross_branch_search(
      decoder_model(), ResourceBudget::from_platform(arch::platform_zu9cg()),
      decoder_customization(), fast_options(3));
  EXPECT_GE(big.eval.min_fps, small.eval.min_fps * 0.95);
}

// ---------------------------------------------------------------- driver --
TEST(SearchDriverTest, OptimizeNormalizesAndRuns) {
  SearchSpec spec;
  spec.search = fast_options();
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome->kind, SearchKind::kOptimize);
  EXPECT_TRUE(outcome->search.feasible);  // default batch {1,1,1} fits easily
}

TEST(SearchDriverTest, BadCustomizationPropagates) {
  SearchSpec spec;
  spec.customization.batch_sizes = {1, 2};  // wrong arity
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_FALSE(outcome.is_ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(SearchDriverTest, ConvergenceStudyAggregates) {
  SearchSpec spec;
  spec.kind = SearchKind::kConvergence;
  spec.customization = decoder_customization();
  spec.search = fast_options();
  spec.convergence_runs = 3;
  auto outcome =
      SearchDriver(decoder_model(), arch::platform_zu9cg()).run(spec);
  ASSERT_TRUE(outcome.is_ok());
  const ConvergenceStats& stats = outcome->convergence;
  EXPECT_EQ(stats.runs, 3);
  EXPECT_GE(stats.mean_iterations, stats.min_iterations);
  EXPECT_LE(stats.mean_iterations, stats.max_iterations);
  EXPECT_GE(stats.min_iterations, 1);
  EXPECT_LE(stats.max_iterations, 6);
  EXPECT_GE(stats.fitness_spread, 0);
}

}  // namespace
}  // namespace fcad::dse
