#include <gtest/gtest.h>

#include "arch/reorg.hpp"
#include "nn/builder.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "nn/zoo/classic_nets.hpp"

namespace fcad::arch {
namespace {

TEST(ReorgTest, AvatarDecoderPipelines) {
  auto model = reorganize(nn::zoo::avatar_decoder());
  ASSERT_TRUE(model.is_ok()) << model.status().to_string();
  ASSERT_EQ(model->num_branches(), 3);
  // Ownership after reorganization: Br.1 6 stages, Br.2 8 (incl. the two
  // shared), Br.3 4 (its own tail only).
  EXPECT_EQ(model->branches[0].stages.size(), 6u);
  EXPECT_EQ(model->branches[1].stages.size(), 8u);
  EXPECT_EQ(model->branches[2].stages.size(), 4u);
  EXPECT_EQ(model->branches[0].role, "geometry");
  EXPECT_EQ(model->branches[1].role, "texture");
  EXPECT_EQ(model->branches[2].role, "warp_field");
}

TEST(ReorgTest, SharedStagesAssignedToCriticalBranch) {
  auto model = reorganize(nn::zoo::avatar_decoder());
  ASSERT_TRUE(model.is_ok());
  ASSERT_EQ(model->shared_stages.size(), 2u);  // sh_l1, sh_l2
  for (int s : model->shared_stages) {
    EXPECT_EQ(model->owner[static_cast<std::size_t>(s)], 1)
        << "shared stage must belong to Br.2 (highest demand)";
  }
}

TEST(ReorgTest, PathIncludesForeignSharedStages) {
  auto model = reorganize(nn::zoo::avatar_decoder());
  ASSERT_TRUE(model.is_ok());
  const BranchPipeline& br3 = model->branches[2];
  EXPECT_EQ(br3.path.size(), 6u);  // 2 shared + 4 own
  EXPECT_EQ(br3.stages.size(), 4u);
  // The path's first two stages are owned by Br.2.
  EXPECT_EQ(model->owner[static_cast<std::size_t>(br3.path[0])], 1);
  EXPECT_EQ(model->owner[static_cast<std::size_t>(br3.path[1])], 1);
}

TEST(ReorgTest, OpsAccounting) {
  auto model = reorganize(nn::zoo::avatar_decoder());
  ASSERT_TRUE(model.is_ok());
  std::int64_t owned = 0;
  for (const BranchPipeline& br : model->branches) owned += br.ops_owned;
  std::int64_t total = 0;
  for (const FusedStage& st : model->fused.stages) total += st.ops;
  EXPECT_EQ(owned, total);  // each stage owned exactly once
  // Path ops of Br.3 exceed its owned ops by the shared prefix.
  EXPECT_GT(model->branches[2].ops_path, model->branches[2].ops_owned);
  // Br.2 owns its full path.
  EXPECT_EQ(model->branches[1].ops_path, model->branches[1].ops_owned);
}

TEST(ReorgTest, StagesInExecutionOrder) {
  auto model = reorganize(nn::zoo::avatar_decoder());
  ASSERT_TRUE(model.is_ok());
  for (const BranchPipeline& br : model->branches) {
    for (std::size_t i = 1; i < br.path.size(); ++i) {
      // Chain: stage i's producer is stage i-1 of the path.
      const auto& ins =
          model->fused.stage_inputs[static_cast<std::size_t>(br.path[i])];
      ASSERT_EQ(ins.size(), 1u);
      EXPECT_EQ(ins[0], br.path[i - 1]);
    }
  }
}

TEST(ReorgTest, SingleBranchNetTrivial) {
  auto model = reorganize(nn::zoo::vgg16());
  ASSERT_TRUE(model.is_ok());
  EXPECT_EQ(model->num_branches(), 1);
  EXPECT_TRUE(model->shared_stages.empty());
  EXPECT_EQ(model->branches[0].stages.size(), 16u);  // 13 conv + 3 fc
}

TEST(ReorgTest, JoinGraphRejected) {
  // Two convs concatenated mid-graph -> a stage with two producers, which
  // the chain-pipeline paradigm cannot map.
  nn::GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto c1 = b.conv2d(in, "c1", {.out_ch = 8, .kernel = 3});
  auto c2 = b.conv2d(in, "c2", {.out_ch = 8, .kernel = 3});
  auto cat = b.concat({c1, c2}, "cat");
  auto c3 = b.conv2d(cat, "c3", {.out_ch = 8, .kernel = 3});
  b.output(c3, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  auto model = reorganize(*g);
  EXPECT_FALSE(model.is_ok());
}

}  // namespace
}  // namespace fcad::arch
