// Cross-module property tests: invariants that must hold across the whole
// analytical stack, swept over parameter grids (TEST_P), plus a parser fuzz
// pass with the deterministic RNG.
#include <gtest/gtest.h>

#include <tuple>

#include "arch/elastic.hpp"
#include "arch/platform.hpp"
#include "dse/in_branch.hpp"
#include "nn/serialize.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "perf/analytical.hpp"
#include "perf/efficiency.hpp"
#include "util/rng.hpp"

namespace fcad {
namespace {

const arch::ReorganizedModel& decoder_model() {
  static const arch::ReorganizedModel model = [] {
    auto m = arch::reorganize(nn::zoo::avatar_decoder());
    FCAD_CHECK(m.is_ok());
    return std::move(m).value();
  }();
  return model;
}

// ---------------------------------------------------------------------------
// Invariant: for every stage and every divisor config, the elastic
// evaluator's stage latency equals Eq. 4 exactly (the analytical model is
// self-consistent from formula to full-accelerator evaluation).
class StageLatencyConsistency : public ::testing::TestWithParam<int> {};

TEST_P(StageLatencyConsistency, ElasticMatchesEq4) {
  const int lanes_target = GetParam();
  const auto& model = decoder_model();
  arch::AcceleratorConfig config;
  for (const arch::BranchPipeline& br : model.branches) {
    arch::BranchHardwareConfig hw;
    hw.batch = 1;
    for (int s : br.stages) {
      hw.units.push_back(arch::get_pf(lanes_target, model.stage(s)));
    }
    config.branches.push_back(std::move(hw));
  }
  const arch::AcceleratorEval eval =
      arch::evaluate(model, config, arch::EvalMode::kAnalytical);
  for (std::size_t b = 0; b < model.branches.size(); ++b) {
    const arch::BranchPipeline& br = model.branches[b];
    for (std::size_t i = 0; i < br.stages.size(); ++i) {
      const arch::FusedStage& st = model.stage(br.stages[i]);
      if (st.kind != arch::FusedStage::Kind::kConv) continue;
      const arch::UnitConfig& cfg = config.branches[b].units[i];
      const double eq4 = perf::latency_eq4_cycles(
          st.out_ch, st.in_ch, st.out_h, st.out_w, st.kernel, cfg.cpf,
          cfg.kpf, cfg.h);
      EXPECT_DOUBLE_EQ(eval.branches[b].stages[i].cycles, eq4)
          << st.name << " at " << cfg.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LaneSweep, StageLatencyConsistency,
                         ::testing::Values(1, 8, 32, 128, 512, 2048));

// ---------------------------------------------------------------------------
// Invariant: growing any single resource in the in-branch slice never makes
// the result slower or infeasible-from-feasible (monotonicity of Alg. 2).
class InBranchMonotonicity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(InBranchMonotonicity, MoreComputeNeverSlower) {
  const auto [branch, base_dsps] = GetParam();
  const dse::ResourceBudget small{static_cast<double>(base_dsps), 800, 6.0};
  dse::ResourceBudget big = small;
  big.c *= 2;
  const auto rs = dse::in_branch_optimize(decoder_model(), branch, small, 1,
                                          nn::DataType::kInt8,
                                          nn::DataType::kInt8, 200.0);
  const auto rb = dse::in_branch_optimize(decoder_model(), branch, big, 1,
                                          nn::DataType::kInt8,
                                          nn::DataType::kInt8, 200.0);
  EXPECT_LE(rb.bottleneck_cycles, rs.bottleneck_cycles * 1.0001);
  if (rs.met_batch_target) {
    EXPECT_TRUE(rb.met_batch_target);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InBranchMonotonicity,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(64, 256, 1024)));

// ---------------------------------------------------------------------------
// Invariant: Eq. 3 efficiency of any quantized evaluation stays in (0, 1]
// and equals gops / peak exactly.
class EfficiencyBound
    : public ::testing::TestWithParam<std::tuple<int, nn::DataType>> {};

TEST_P(EfficiencyBound, WithinUnitInterval) {
  const auto [lanes, dtype] = GetParam();
  const auto& model = decoder_model();
  arch::AcceleratorConfig config;
  config.datapath = arch::datapath_from_quantization(dtype);
  for (const arch::BranchPipeline& br : model.branches) {
    arch::BranchHardwareConfig hw;
    hw.batch = 1;
    for (int s : br.stages) {
      hw.units.push_back(arch::get_pf(lanes, model.stage(s)));
    }
    config.branches.push_back(std::move(hw));
  }
  const auto eval = arch::evaluate(model, config, arch::EvalMode::kQuantized);
  for (const arch::BranchEval& be : eval.branches) {
    EXPECT_GT(be.efficiency, 0.0);
    EXPECT_LE(be.efficiency, 1.0 + 1e-9);
    EXPECT_NEAR(be.efficiency,
                perf::efficiency_eq3(be.gops, dtype, be.dsps, 200.0), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EfficiencyBound,
    ::testing::Combine(::testing::Values(4, 64, 1024),
                       ::testing::Values(nn::DataType::kInt8,
                                         nn::DataType::kInt16)));

// ---------------------------------------------------------------------------
// Fuzz: the graph text parser must never crash — any mutation of a valid
// serialization yields either a valid graph or a clean Status error.
TEST(SerializeFuzzTest, MutatedTextNeverCrashes) {
  const std::string base = nn::to_text(nn::zoo::avatar_decoder());
  Rng rng(0xF00D);
  int parsed_ok = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = base;
    const int mutations = static_cast<int>(rng.next_int(1, 8));
    for (int m = 0; m < mutations; ++m) {
      const auto pos =
          static_cast<std::size_t>(rng.next_int(0, static_cast<std::int64_t>(
                                                       text.size() - 1)));
      switch (rng.next_int(0, 2)) {
        case 0:  // replace with random printable char
          text[pos] = static_cast<char>(rng.next_int(32, 126));
          break;
        case 1:  // delete
          text.erase(pos, 1);
          break;
        default:  // duplicate
          text.insert(pos, 1, text[pos]);
          break;
      }
    }
    const auto result = nn::from_text(text);  // must not throw/crash
    parsed_ok += result.is_ok();
  }
  // Most mutations break something; a few survive (e.g. touching names).
  EXPECT_LT(parsed_ok, 200);
}

// Fuzz: random well-formed-ish token soup.
TEST(SerializeFuzzTest, RandomTokenSoupNeverCrashes) {
  Rng rng(0xBEEF);
  const char* tokens[] = {"graph",  "input", "conv2d", "in=0", "in=1,2",
                          "8",      "-3",    "x",      "#",    "output",
                          "concat", "dense", "1",      "16",   "relu"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const int lines = static_cast<int>(rng.next_int(1, 6));
    for (int l = 0; l < lines; ++l) {
      const int words = static_cast<int>(rng.next_int(1, 7));
      for (int w = 0; w < words; ++w) {
        text += tokens[rng.next_int(0, 14)];
        text += ' ';
      }
      text += '\n';
    }
    (void)nn::from_text(text);  // only checking for crashes/exceptions
  }
}

}  // namespace
}  // namespace fcad
