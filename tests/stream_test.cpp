// Streaming-replay suite (serving step 9): the lazy workload stream must
// reproduce the materialized generators draw for draw, the streaming fleet
// replay must match the materialized one bit for bit (and stay bounded in
// sketch mode), and the binary v2 checkpoint + multi-process merge must be
// strict about torn, stale, overlapping, or missing inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "serving/fleet.hpp"
#include "serving/scenario.hpp"
#include "serving/sketch.hpp"
#include "serving/stats.hpp"
#include "serving/stream.hpp"
#include "serving/workload.hpp"
#include "util/status.hpp"

namespace fcad::serving {
namespace {

ServiceModel test_service() {
  ServiceModel service;
  service.branches = {{2, 3000.0}, {4, 5000.0}};
  return service;
}

WorkloadOptions stream_workload(std::int64_t target, std::uint64_t seed) {
  WorkloadOptions wl;
  wl.users = 6;
  wl.branches = 2;
  wl.frame_rate_hz = 40;
  wl.seed = seed;
  wl.target_requests = target;
  return wl;
}

ScenarioSpec shaped_scenario() {
  ScenarioSpec spec;
  spec.diurnal.period_s = 2.0;
  spec.diurnal.amplitude = 0.5;
  FlashCrowdSpec flash;
  flash.start_s = 0.5;
  flash.end_s = 1.5;
  flash.rate_multiplier = 2.0;
  flash.extra_users = 2;
  spec.flash.push_back(flash);
  return spec;
}

void expect_same_trace(const std::vector<Request>& a,
                       const std::vector<Request>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].id, b[i].id) << "at " << i;
    ASSERT_EQ(a[i].user, b[i].user) << "at " << i;
    ASSERT_EQ(a[i].branch, b[i].branch) << "at " << i;
    ASSERT_EQ(a[i].arrival_us, b[i].arrival_us) << "at " << i;
  }
}

std::string stats_text(const ServingStats& stats) {
  std::ostringstream os;
  serving_stats_to_text(os, stats);
  return os.str();
}

/// Scratch file path under the build tree, removed on destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("fcad_stream_test_" + name))
                  .string()) {
    std::filesystem::remove(path_);
  }
  ~ScratchFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(StreamTest, StreamMatchesGeneratorsDrawForDraw) {
  // Target mode and duration mode, both arrival processes, several seeds:
  // the pull-based stream must emit exactly the materialized generator's
  // sequence (same ids, users, branches, arrival times).
  for (ArrivalProcess process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty}) {
    for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      WorkloadOptions wl = stream_workload(3000, seed);
      wl.process = process;
      auto generated = generate_workload(wl);
      ASSERT_TRUE(generated.is_ok());
      auto stream = make_request_stream(wl);
      ASSERT_TRUE(stream.is_ok());
      auto drained = drain_request_stream(**stream);
      ASSERT_TRUE(drained.is_ok());
      expect_same_trace(*generated, *drained);

      WorkloadOptions by_duration = wl;
      by_duration.target_requests = 0;
      by_duration.duration_s = 0.8;
      auto generated_d = generate_workload(by_duration);
      ASSERT_TRUE(generated_d.is_ok());
      auto stream_d = make_request_stream(by_duration);
      ASSERT_TRUE(stream_d.is_ok());
      auto drained_d = drain_request_stream(**stream_d);
      ASSERT_TRUE(drained_d.is_ok());
      expect_same_trace(*generated_d, *drained_d);
    }
  }
}

TEST(StreamTest, ScenarioStreamMatchesScenarioGenerator) {
  WorkloadOptions wl = stream_workload(4000, 11);
  const ScenarioSpec scenario = shaped_scenario();
  auto generated = generate_scenario_workload(wl, scenario);
  ASSERT_TRUE(generated.is_ok());
  auto stream = make_request_stream(wl, scenario);
  ASSERT_TRUE(stream.is_ok());
  auto drained = drain_request_stream(**stream);
  ASSERT_TRUE(drained.is_ok());
  expect_same_trace(*generated, *drained);
}

TEST(StreamTest, StreamingFleetMatchesMaterializedBitForBit) {
  // The tentpole contract: simulate_fleet_stream == simulate_fleet on the
  // same spec, in both latency modes, at several thread counts — compared
  // through the full text serialization, so every field must agree.
  const ServiceModel service = test_service();
  for (LatencyMode mode : {LatencyMode::kExact, LatencyMode::kSketch}) {
    ServeSpec spec;
    spec.workload = stream_workload(20000, 5);
    spec.fleet.instances = 4;
    spec.fleet.shards = 4;
    spec.fleet.latency_mode = mode;
    spec.scenario = shaped_scenario();

    auto trace = generate_scenario_workload(spec.workload, spec.scenario);
    ASSERT_TRUE(trace.is_ok());
    auto materialized = simulate_fleet(service, *trace, spec);
    ASSERT_TRUE(materialized.is_ok());
    const std::string want = stats_text(*materialized);
    // The materialized and stream fingerprints differ by design (one hashes
    // requests, the other generator parameters), but both must derive the
    // same per-request sketch inputs — compare full stats text, which in
    // sketch mode includes the sketch-derived quantiles.
    for (int threads : {1, 2, 8}) {
      spec.fleet.threads = threads;
      auto streamed = simulate_fleet_stream(service, spec);
      ASSERT_TRUE(streamed.is_ok());
      EXPECT_EQ(stats_text(*streamed), want)
          << "mode " << to_string(mode) << " threads " << threads;
      EXPECT_EQ(streamed->latency_mode, mode);
    }
  }
}

TEST(StreamTest, SketchReplayTracksExactReplayWithinBound) {
  // Cross-check at scale: the sketch-mode replay's p50/p95/p99 within 0.5%
  // of the exact-mode replay on the same million-request workload.
  const ServiceModel service = test_service();
  ServeSpec spec;
  spec.workload = stream_workload(1'000'000, 21);
  spec.workload.users = 16;
  spec.fleet.instances = 8;
  spec.fleet.shards = 8;

  spec.fleet.latency_mode = LatencyMode::kExact;
  auto exact = simulate_fleet_stream(service, spec);
  ASSERT_TRUE(exact.is_ok());
  spec.fleet.latency_mode = LatencyMode::kSketch;
  auto sketch = simulate_fleet_stream(service, spec);
  ASSERT_TRUE(sketch.is_ok());

  EXPECT_EQ(sketch->completed, exact->completed);
  EXPECT_EQ(sketch->latency.max, exact->latency.max) << "max stays exact";
  // The sketch sum is fixed point (2^-24 us units), so its mean can differ
  // from the exact double-accumulated mean by rounding dust only.
  EXPECT_NEAR(sketch->latency.mean, exact->latency.mean,
              1e-6 * std::abs(exact->latency.mean) + 1e-6)
      << "mean stays exact to within fixed-point rounding";
  const std::vector<std::pair<double, double>> pairs = {
      {sketch->latency.p50, exact->latency.p50},
      {sketch->latency.p95, exact->latency.p95},
      {sketch->latency.p99, exact->latency.p99},
      {sketch->queue_wait.p99, exact->queue_wait.p99}};
  for (const auto& [approx, want] : pairs) {
    ASSERT_GT(want, 0);
    EXPECT_LE(std::abs(approx - want) / want, 0.005)
        << "sketch " << approx << " vs exact " << want;
  }
  EXPECT_EQ(sketch->sketch_compactions, 0);
  EXPECT_GT(sketch->sketch_buckets, 0);
}

TEST(StreamTest, ProcessShardedCheckpointsMergeToSingleProcessResult) {
  const ServiceModel service = test_service();
  ScratchFile p0("merge_p0.ckpt");
  ScratchFile p1("merge_p1.ckpt");
  ServeSpec spec;
  spec.workload = stream_workload(30000, 13);
  spec.fleet.instances = 4;
  spec.fleet.shards = 4;
  spec.fleet.latency_mode = LatencyMode::kSketch;

  ServeSpec single = spec;
  auto want = simulate_fleet_stream(service, single);
  ASSERT_TRUE(want.is_ok());

  spec.fleet.process_count = 2;
  spec.fleet.process_index = 0;
  spec.fleet.checkpoint_path = p0.path();
  auto part0 = simulate_fleet_stream(service, spec);
  ASSERT_TRUE(part0.is_ok());
  spec.fleet.process_index = 1;
  spec.fleet.checkpoint_path = p1.path();
  auto part1 = simulate_fleet_stream(service, spec);
  ASSERT_TRUE(part1.is_ok());
  // Each process reports only its owned shards.
  EXPECT_EQ(part0->offered + part1->offered, want->offered);

  ServeSpec merge_spec = single;
  auto merged =
      merge_replay_checkpoints(service, merge_spec, {p0.path(), p1.path()});
  ASSERT_TRUE(merged.is_ok());
  ServingStats expect = *want;
  expect.resumed_shards = merged->resumed_shards;  // provenance, not results
  EXPECT_EQ(stats_text(*merged), stats_text(expect));

  // Merge order must not matter (sketch merges are associative).
  auto merged_rev =
      merge_replay_checkpoints(service, merge_spec, {p1.path(), p0.path()});
  ASSERT_TRUE(merged_rev.is_ok());
  EXPECT_EQ(stats_text(*merged_rev), stats_text(*merged));
}

TEST(StreamTest, MergeIsStrictAboutBadInputs) {
  const ServiceModel service = test_service();
  ScratchFile p0("strict_p0.ckpt");
  ScratchFile p1("strict_p1.ckpt");
  ScratchFile torn("strict_torn.ckpt");
  ServeSpec spec;
  spec.workload = stream_workload(8000, 17);
  spec.fleet.instances = 4;
  spec.fleet.shards = 4;
  spec.fleet.latency_mode = LatencyMode::kSketch;

  ServeSpec run = spec;
  run.fleet.process_count = 2;
  run.fleet.process_index = 0;
  run.fleet.checkpoint_path = p0.path();
  ASSERT_TRUE(simulate_fleet_stream(service, run).is_ok());
  run.fleet.process_index = 1;
  run.fleet.checkpoint_path = p1.path();
  ASSERT_TRUE(simulate_fleet_stream(service, run).is_ok());

  // Missing shard range: only half the fleet is covered.
  auto missing = merge_replay_checkpoints(service, spec, {p0.path()});
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  // Overlap: the same range twice.
  auto overlap =
      merge_replay_checkpoints(service, spec, {p0.path(), p0.path()});
  EXPECT_EQ(overlap.status().code(), StatusCode::kInvalidArgument);
  // Torn file: a truncated copy must be rejected, never partially applied.
  {
    std::ifstream in(p1.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    std::ofstream out(torn.path(), std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() * 2 / 3));
  }
  auto torn_merge =
      merge_replay_checkpoints(service, spec, {p0.path(), torn.path()});
  EXPECT_EQ(torn_merge.status().code(), StatusCode::kInvalidArgument);
  // Stale/foreign: a checkpoint from a different seed never merges.
  ServeSpec other = spec;
  other.workload.seed = 99;
  auto stale =
      merge_replay_checkpoints(service, other, {p0.path(), p1.path()});
  EXPECT_EQ(stale.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamTest, BinaryCheckpointResumesAndRejectsTamperedFiles) {
  const ServiceModel service = test_service();
  ScratchFile ckpt("resume.ckpt");
  ServeSpec spec;
  spec.workload = stream_workload(10000, 23);
  spec.fleet.instances = 4;
  spec.fleet.shards = 4;
  spec.fleet.latency_mode = LatencyMode::kSketch;

  auto fresh = simulate_fleet_stream(service, spec);
  ASSERT_TRUE(fresh.is_ok());

  // A half-fleet process run leaves a resumable binary checkpoint; the full
  // run resumes those shards and still matches the uninterrupted result.
  ServeSpec half = spec;
  half.fleet.process_count = 2;
  half.fleet.process_index = 0;
  half.fleet.checkpoint_path = ckpt.path();
  ASSERT_TRUE(simulate_fleet_stream(service, half).is_ok());
  ServeSpec resume = spec;
  resume.fleet.checkpoint_path = ckpt.path();
  auto resumed = simulate_fleet_stream(service, resume);
  ASSERT_TRUE(resumed.is_ok());
  EXPECT_EQ(resumed->resumed_shards, 2);
  ServingStats want = *fresh;
  want.resumed_shards = resumed->resumed_shards;
  EXPECT_EQ(stats_text(*resumed), stats_text(want));

  // Truncate the file: a torn checkpoint restarts (resumes nothing) and
  // still converges to the same stats.
  {
    std::ifstream in(ckpt.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    std::ofstream out(ckpt.path(),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto after_torn = simulate_fleet_stream(service, resume);
  ASSERT_TRUE(after_torn.is_ok());
  EXPECT_EQ(after_torn->resumed_shards, 0);
  want.resumed_shards = 0;
  EXPECT_EQ(stats_text(*after_torn), stats_text(want));

  // A different replay's checkpoint (stale fingerprint) is ignored, never
  // misapplied.
  ServeSpec other = spec;
  other.workload.seed = 77;
  other.fleet.checkpoint_path = ckpt.path();
  ASSERT_TRUE(simulate_fleet_stream(service, other).is_ok());
  auto mismatched = simulate_fleet_stream(service, resume);
  ASSERT_TRUE(mismatched.is_ok());
  EXPECT_EQ(mismatched->resumed_shards, 0);
  EXPECT_EQ(stats_text(*mismatched), stats_text(want));
}

TEST(StreamTest, UnsortedTraceReplaysIdenticallyToSortedTrace) {
  // The single-pass partition keeps per-shard relative order; a shuffled
  // trace must replay to bit-identical stats as its sorted twin.
  const ServiceModel service = test_service();
  WorkloadOptions wl = stream_workload(5000, 31);
  auto trace = generate_workload(wl);
  ASSERT_TRUE(trace.is_ok());
  std::vector<Request> shuffled = *trace;
  std::mt19937_64 rng(4242);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);

  ServeSpec spec;
  spec.fleet.instances = 4;
  spec.fleet.shards = 4;
  auto sorted_stats = simulate_fleet(service, *trace, spec);
  ASSERT_TRUE(sorted_stats.is_ok());
  auto shuffled_stats = simulate_fleet(service, shuffled, spec);
  ASSERT_TRUE(shuffled_stats.is_ok());
  EXPECT_EQ(stats_text(*shuffled_stats), stats_text(*sorted_stats));
}

TEST(StreamTest, StreamPathRejectsInvalidSpecs) {
  const ServiceModel service = test_service();
  ServeSpec spec;
  spec.workload = stream_workload(1000, 3);
  spec.fleet.instances = 2;
  spec.fleet.shards = 2;

  ServeSpec no_target = spec;
  no_target.workload.target_requests = 0;
  EXPECT_EQ(simulate_fleet_stream(service, no_target).status().code(),
            StatusCode::kInvalidArgument);

  ServeSpec traced = spec;
  traced.workload.process = ArrivalProcess::kTrace;
  traced.workload.trace_arrivals_us = {1, 2, 3};
  EXPECT_EQ(simulate_fleet_stream(service, traced).status().code(),
            StatusCode::kInvalidArgument);

  ServeSpec records = spec;
  records.fleet.latency_mode = LatencyMode::kSketch;
  records.fleet.keep_records = true;
  EXPECT_EQ(simulate_fleet_stream(service, records).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(simulate_fleet(service, {}, records).status().code(),
            StatusCode::kInvalidArgument);

  ServeSpec no_ckpt = spec;
  no_ckpt.fleet.process_count = 2;
  EXPECT_EQ(simulate_fleet_stream(service, no_ckpt).status().code(),
            StatusCode::kInvalidArgument);

  ServeSpec bad_range = spec;
  bad_range.fleet.process_count = 2;
  bad_range.fleet.process_index = 2;
  bad_range.fleet.checkpoint_path = "unused.ckpt";
  EXPECT_EQ(simulate_fleet_stream(service, bad_range).status().code(),
            StatusCode::kInvalidArgument);

  // The materialized path refuses process sharding outright.
  ServeSpec not_stream = spec;
  not_stream.fleet.process_count = 2;
  not_stream.fleet.checkpoint_path = "unused.ckpt";
  EXPECT_EQ(simulate_fleet(service, {}, not_stream).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fcad::serving
