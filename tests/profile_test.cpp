#include <gtest/gtest.h>

#include <tuple>

#include "analysis/profile.hpp"
#include "nn/builder.hpp"

namespace fcad::analysis {
namespace {

using nn::GraphBuilder;
using nn::TensorShape;

nn::Graph single_conv(int in_ch, int hw, int out_ch, int kernel, bool untied,
                      bool bias = true) {
  GraphBuilder b("t");
  auto in = b.input("x", {in_ch, hw, hw});
  auto c = b.conv2d(in, "c",
                    {.out_ch = out_ch, .kernel = kernel, .stride = 1,
                     .untied_bias = untied, .bias = bias});
  b.output(c, "y");
  auto g = std::move(b).build();
  FCAD_CHECK(g.is_ok());
  return std::move(g).value();
}

TEST(ProfileTest, ConvHandComputed) {
  // 4x6x6 in, 8 out channels, 3x3 kernel: MACs = 8*4*9*36 = 10368.
  const nn::Graph g = single_conv(4, 6, 8, 3, /*untied=*/false);
  const GraphProfile p = profile_graph(g);
  const LayerProfile& conv = p.layers[1];
  EXPECT_EQ(conv.macs, 10368);
  EXPECT_EQ(conv.weight_params, 8 * 4 * 9);
  EXPECT_EQ(conv.bias_params, 8);  // tied: one per output channel
  EXPECT_EQ(conv.ops, 2 * 10368 + 8 * 36);
}

TEST(ProfileTest, UntiedBiasIsPerPixel) {
  const nn::Graph tied = single_conv(4, 6, 8, 3, false);
  const nn::Graph untied = single_conv(4, 6, 8, 3, true);
  const GraphProfile tied_profile = profile_graph(tied);
  const GraphProfile untied_profile = profile_graph(untied);
  const LayerProfile& pt = tied_profile.layers[1];
  const LayerProfile& pu = untied_profile.layers[1];
  EXPECT_EQ(pu.bias_params, 36);  // one per output pixel (6x6)
  EXPECT_EQ(pt.bias_params, 8);
  EXPECT_EQ(pu.macs, pt.macs);  // bias scheme does not change MACs
}

TEST(ProfileTest, NoBiasNoBiasParamsNoBiasOps) {
  const nn::Graph g = single_conv(4, 6, 8, 3, false, /*bias=*/false);
  const GraphProfile gp = profile_graph(g);
  const LayerProfile& conv = gp.layers[1];
  EXPECT_EQ(conv.bias_params, 0);
  EXPECT_EQ(conv.ops, 2 * conv.macs);
}

TEST(ProfileTest, StridedConvUsesOutputDims) {
  GraphBuilder b("t");
  auto in = b.input("x", {3, 8, 8});
  auto c = b.conv2d(in, "c", {.out_ch = 2, .kernel = 3, .stride = 2});
  b.output(c, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  const GraphProfile gp = profile_graph(*g);
  const LayerProfile& conv = gp.layers[1];
  // out 4x4: MACs = 2*3*9*16 = 864.
  EXPECT_EQ(conv.macs, 864);
}

TEST(ProfileTest, DenseHandComputed) {
  GraphBuilder b("t");
  auto in = b.input("x", {16, 2, 2});  // flattened to 64
  auto fc = b.dense(in, "fc", {.out_features = 10});
  b.output(fc, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  const GraphProfile gp = profile_graph(*g);
  const LayerProfile& dense = gp.layers[1];
  EXPECT_EQ(dense.macs, 640);
  EXPECT_EQ(dense.weight_params, 640);
  EXPECT_EQ(dense.bias_params, 10);
  EXPECT_EQ(dense.ops, 2 * 640 + 10);
}

TEST(ProfileTest, PointwiseLayers) {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto act = b.leaky_relu(in, "act");
  auto up = b.upsample2x(act, "up");
  auto pool = b.max_pool(up, "pool", {.kernel = 2, .stride = 2});
  b.output(pool, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  const GraphProfile p = profile_graph(*g);
  EXPECT_EQ(p.layers[1].ops, 4 * 8 * 8);        // act: 1 op/elem
  EXPECT_EQ(p.layers[2].ops, 4 * 16 * 16);      // nearest upsample
  EXPECT_EQ(p.layers[3].ops, 4 * 4 * 8 * 8);    // pool: k^2 per out elem
  EXPECT_EQ(p.layers[1].params, 0);
  EXPECT_EQ(p.layers[2].macs, 0);
}

TEST(ProfileTest, BilinearUpsampleCostsMacs) {
  GraphBuilder b("t");
  auto in = b.input("x", {4, 8, 8});
  auto up = b.upsample2x(in, "up", nn::Upsample2xAttrs::Mode::kBilinear);
  b.output(up, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  const GraphProfile gp = profile_graph(*g);
  const LayerProfile& lp = gp.layers[1];
  EXPECT_EQ(lp.macs, 4LL * 4 * 16 * 16);
}

TEST(ProfileTest, StructuralLayersAreFree) {
  GraphBuilder b("t");
  auto in1 = b.input("a", {4, 8, 8});
  auto in2 = b.input("b", {3, 8, 8});
  auto cat = b.concat({in1, in2}, "cat");
  auto r = b.reshape(cat, "r", {7, 8, 8});
  b.output(r, "y");
  auto g = std::move(b).build();
  ASSERT_TRUE(g.is_ok());
  const GraphProfile p = profile_graph(*g);
  EXPECT_EQ(p.total_ops, 0);
  EXPECT_EQ(p.total_params, 0);
}

TEST(ProfileTest, TotalsAreSumsOfLayers) {
  const nn::Graph g = single_conv(16, 16, 32, 3, true);
  const GraphProfile p = profile_graph(g);
  std::int64_t ops = 0, macs = 0, params = 0;
  for (const auto& lp : p.layers) {
    ops += lp.ops;
    macs += lp.macs;
    params += lp.params;
  }
  EXPECT_EQ(p.total_ops, ops);
  EXPECT_EQ(p.total_macs, macs);
  EXPECT_EQ(p.total_params, params);
}

// Property sweep: conv MAC count scales exactly with each dimension.
class ConvScalingTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvScalingTest, MacsFollowClosedForm) {
  const auto [in_ch, out_ch, kernel] = GetParam();
  const nn::Graph g = single_conv(in_ch, 16, out_ch, kernel, false);
  const GraphProfile gp = profile_graph(g);
  const LayerProfile& conv = gp.layers[1];
  EXPECT_EQ(conv.macs, static_cast<std::int64_t>(in_ch) * out_ch * kernel *
                           kernel * 16 * 16);
  EXPECT_EQ(conv.weight_params,
            static_cast<std::int64_t>(in_ch) * out_ch * kernel * kernel);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvScalingTest,
    ::testing::Combine(::testing::Values(1, 3, 16, 64),
                       ::testing::Values(1, 8, 32),
                       ::testing::Values(1, 3, 4, 5)));

}  // namespace
}  // namespace fcad::analysis
