// dse::Objective: term composition, and the bit-for-bit equivalence of the
// canned compositions with the legacy fitness_score / sla_fitness_score —
// the contract that lets the unified driver replace the old entry points
// without changing a single search result.
#include <gtest/gtest.h>

#include <vector>

#include "arch/platform.hpp"
#include "dse/cross_branch.hpp"
#include "dse/objective.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "util/rng.hpp"

namespace fcad::dse {
namespace {

TEST(ObjectiveTest, BatchFitnessMatchesLegacyBitForBit) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    ObjectiveInput input;
    const int branches = 1 + static_cast<int>(rng.next_range(0, 5));
    for (int b = 0; b < branches; ++b) {
      input.fps.push_back(rng.next_range(0.0, 500.0));
      input.priorities.push_back(rng.next_range(0.1, 8.0));
    }
    input.unmet_targets = trial % 4;
    FitnessParams params;
    params.alpha = rng.next_range(0.0, 1.0);
    params.infeasible_demerit = rng.next_range(1e3, 1e8);
    EXPECT_EQ(Objective::batch_fitness(params).score(input),
              fitness_score(input.fps, input.priorities, input.unmet_targets,
                            params))
        << "trial " << trial;
  }
}

TEST(ObjectiveTest, SlaMatchesLegacyBitForBit) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    ObjectiveInput input;
    input.has_serving = true;
    input.users_served = static_cast<int>(rng.next_range(0, 64));
    // Cover headroom > 0, ~0, and deep over-bound alike.
    input.p99_latency_us = rng.next_range(0.0, 120000.0);
    input.sla_violation_rate = rng.next_range(0.0, 0.5);
    SlaParams params;
    params.p99_bound_us = rng.next_range(10000.0, 50000.0);
    params.over_bound_demerit = rng.next_range(1e3, 1e7);
    params.violation_weight = rng.next_range(1.0, 1e4);
    EXPECT_EQ(Objective::sla(params).score(input),
              sla_fitness_score(input.users_served, input.p99_latency_us,
                                input.sla_violation_rate, params))
        << "trial " << trial;
  }
}

TEST(ObjectiveTest, TermsAccumulateWithWeightsInOrder) {
  Objective objective;
  objective.add("constant", 2.0, [](const ObjectiveInput&) { return 3.0; });
  objective.add("users", 0.5, [](const ObjectiveInput& in) {
    return static_cast<double>(in.users_served);
  });
  ObjectiveInput input;
  input.users_served = 8;
  EXPECT_DOUBLE_EQ(objective.score(input), 2.0 * 3.0 + 0.5 * 8.0);
}

TEST(ObjectiveTest, DescribeListsTermsAndWeights) {
  FitnessParams params;
  params.alpha = 0.05;
  params.infeasible_demerit = 1e7;
  const std::string description =
      Objective::batch_fitness(params).describe();
  EXPECT_EQ(description, "throughput + 0.05*balance + 1e+07*feasibility");
  EXPECT_EQ(Objective().describe(), "<empty>");
}

TEST(ObjectiveTest, ScoringAnEmptyObjectiveIsAnInvariantViolation) {
  EXPECT_THROW(Objective().score(ObjectiveInput{}), InternalError);
}

TEST(ObjectiveTest, ExplicitBatchFitnessReproducesDefaultSearchExactly) {
  // A search with options.objective = batch_fitness(options.fitness) must be
  // indistinguishable from the legacy empty-objective path.
  auto model = arch::reorganize(nn::zoo::avatar_decoder());
  ASSERT_TRUE(model.is_ok());
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  Customization cust;
  cust.batch_sizes = {1, 2, 2};
  ASSERT_TRUE(cust.normalize(3).is_ok());

  CrossBranchOptions options;
  options.population = 24;
  options.iterations = 4;
  options.seed = 99;
  const SearchResult legacy =
      cross_branch_search(*model, budget, cust, options);
  options.objective = Objective::batch_fitness(options.fitness);
  const SearchResult composed =
      cross_branch_search(*model, budget, cust, options);

  EXPECT_EQ(legacy.fitness, composed.fitness);
  EXPECT_EQ(legacy.feasible, composed.feasible);
  EXPECT_EQ(legacy.trace.best_fitness, composed.trace.best_fitness);
  EXPECT_EQ(legacy.trace.convergence_iteration,
            composed.trace.convergence_iteration);
  ASSERT_EQ(legacy.config.branches.size(), composed.config.branches.size());
  for (std::size_t b = 0; b < legacy.config.branches.size(); ++b) {
    EXPECT_EQ(legacy.config.branches[b].batch,
              composed.config.branches[b].batch);
    EXPECT_EQ(legacy.config.branches[b].units,
              composed.config.branches[b].units);
  }
}

TEST(ObjectiveTest, CustomCompositionSteersTheSearch) {
  // An objective that only values branch balance (no throughput term) must
  // still drive a well-formed search; its winner scores no better than the
  // throughput-aware default under the default metric.
  auto model = arch::reorganize(nn::zoo::avatar_decoder());
  ASSERT_TRUE(model.is_ok());
  const auto budget = ResourceBudget::from_platform(arch::platform_zu9cg());
  Customization cust;
  ASSERT_TRUE(cust.normalize(3).is_ok());

  CrossBranchOptions options;
  options.population = 24;
  options.iterations = 4;
  options.seed = 5;
  const SearchResult default_winner =
      cross_branch_search(*model, budget, cust, options);

  Objective balance_only;
  Objective::Term balance = Objective::balance();
  balance_only.add(balance.name, 1.0, balance.value);
  Objective::Term feasibility = Objective::feasibility();
  balance_only.add(feasibility.name, 1e7, feasibility.value);
  options.objective = balance_only;
  const SearchResult balanced_winner =
      cross_branch_search(*model, budget, cust, options);

  ASSERT_EQ(balanced_winner.config.branches.size(), 3u);
  EXPECT_TRUE(balanced_winner.feasible);
  // Scored under the default metric, the specialist cannot beat the
  // generalist that optimized it.
  std::vector<double> fps;
  for (const auto& be : balanced_winner.eval.branches) fps.push_back(be.fps);
  EXPECT_LE(fitness_score(fps, cust.priorities, 0, options.fitness),
            default_winner.fitness);
}

}  // namespace
}  // namespace fcad::dse
