#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <thread>

#include "serving/clock.hpp"
#include "util/run_control.hpp"

namespace fcad::serving {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ----------------------------------------------------------- virtual clock --
TEST(VirtualClockTest, StartsAtOriginAndJumpsToDeadlines) {
  VirtualClock clock(1000.0);
  EXPECT_EQ(clock.now_us(), 1000.0);
  EXPECT_EQ(clock.sleep_until_us(2500.0), 2500.0);
  EXPECT_EQ(clock.now_us(), 2500.0);
}

TEST(VirtualClockTest, NeverMovesBackward) {
  VirtualClock clock(5000.0);
  EXPECT_EQ(clock.sleep_until_us(1000.0), 5000.0);  // past deadline: no-op
  EXPECT_EQ(clock.now_us(), 5000.0);
}

TEST(VirtualClockTest, InfiniteDeadlineLeavesTimeUnchanged) {
  // +inf means "wait for a wake"; with no other thread a virtual clock just
  // reports the current reading so single-threaded drains terminate.
  VirtualClock clock(0.0);
  clock.sleep_until_us(42.0);
  EXPECT_EQ(clock.sleep_until_us(kInf), 42.0);
  EXPECT_EQ(clock.now_us(), 42.0);
}

TEST(VirtualClockTest, WakeIsANoOp) {
  VirtualClock clock(0.0);
  clock.wake();
  EXPECT_EQ(clock.now_us(), 0.0);
  EXPECT_EQ(clock.sleep_until_us(10.0), 10.0);  // not pre-armed by the wake
}

// ------------------------------------------------------------ steady clock --
TEST(SteadyClockTest, StartsAtOriginAndIsMonotone) {
  SteadyClock clock(7000.0);
  const double first = clock.now_us();
  EXPECT_GE(first, 7000.0);
  double prev = first;
  for (int i = 0; i < 100; ++i) {
    const double now = clock.now_us();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(SteadyClockTest, SleepUntilReachesTheDeadline) {
  SteadyClock clock(0.0);
  const double deadline = clock.now_us() + 2000.0;  // 2 ms
  const double after = clock.sleep_until_us(deadline);
  EXPECT_GE(after, deadline);
}

TEST(SteadyClockTest, PastDeadlineReturnsImmediately) {
  SteadyClock clock(0.0);
  const double before = clock.now_us();
  const double after = clock.sleep_until_us(before - 1000.0);
  EXPECT_GE(after, before);
}

TEST(SteadyClockTest, WakeInterruptsAnInfiniteSleep) {
  SteadyClock clock(0.0);
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.sleep_until_us(kInf);
    woke.store(true);
  });
  // Keep waking until the sleeper returns: covers both orderings (wake
  // before the sleep starts is sticky and pre-arms it).
  while (!woke.load()) {
    clock.wake();
    std::this_thread::yield();
  }
  sleeper.join();
}

TEST(SteadyClockTest, WakeWithNoSleeperIsStickyForTheNextSleep) {
  SteadyClock clock(0.0);
  clock.wake();
  const double before = clock.now_us();
  const double after = clock.sleep_until_us(before + 60e6);  // one minute out
  // The pre-armed wake must return immediately, not after a minute.
  EXPECT_LT(after - before, 30e6);
  // The wake was consumed: a second sleep honors its (short) deadline.
  const double deadline = clock.now_us() + 1000.0;
  EXPECT_GE(clock.sleep_until_us(deadline), deadline);
}

// --------------------------------------------------------------- factories --
TEST(ClockFactoryTest, KindNamesRoundTrip) {
  EXPECT_EQ(*clock_kind_by_name("virtual"), ClockKind::kVirtual);
  EXPECT_EQ(*clock_kind_by_name("steady"), ClockKind::kSteady);
  EXPECT_EQ(*clock_kind_by_name("wall"), ClockKind::kSteady);
  EXPECT_EQ(*clock_kind_by_name("Virtual"), ClockKind::kVirtual);
  EXPECT_FALSE(clock_kind_by_name("sundial").is_ok());
  EXPECT_STREQ(to_string(ClockKind::kVirtual), "virtual");
  EXPECT_STREQ(to_string(ClockKind::kSteady), "steady");
  EXPECT_EQ(*clock_kind_by_name(to_string(ClockKind::kVirtual)),
            ClockKind::kVirtual);
  EXPECT_EQ(*clock_kind_by_name(to_string(ClockKind::kSteady)),
            ClockKind::kSteady);
}

TEST(ClockFactoryTest, MakeClockHonorsKindAndOrigin) {
  auto virtual_clock = make_clock(ClockKind::kVirtual, 123.0);
  EXPECT_EQ(virtual_clock->now_us(), 123.0);
  EXPECT_EQ(virtual_clock->sleep_until_us(456.0), 456.0);

  auto steady = make_clock(ClockKind::kSteady, 123.0);
  EXPECT_GE(steady->now_us(), 123.0);
}

// ---------------------------------------------------- RunControl deadlines --
TEST(ClockDeadlineTest, VirtualTimeSourceMakesDeadlinesDeterministic) {
  VirtualClock clock(0.0);
  util::RunControl control;
  control.deadline_s = 1.0;  // one *virtual* second
  control.now_us = [&clock] { return clock.now_us(); };
  util::RunScope scope(control);

  EXPECT_FALSE(scope.should_stop());
  clock.sleep_until_us(0.5e6);
  EXPECT_FALSE(scope.should_stop());
  clock.sleep_until_us(1.5e6);  // jump past the deadline
  EXPECT_TRUE(scope.should_stop());
  EXPECT_FALSE(scope.cancelled());  // deadline, not cancellation
}

}  // namespace
}  // namespace fcad::serving
