// Pins of the obs:: layer: registry snapshot determinism, histogram bucket
// placement and merge associativity, Chrome-trace JSON well-formedness and
// lane ordering, bounded lane capacity, and the disabled-mode no-op
// contracts (null ambient tracer, collection flag off).
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace fcad::obs {
namespace {

TEST(MetricsTest, CountersAndGaugesRoundTrip) {
  MetricsRegistry reg;
  reg.counter("a").add(3);
  reg.counter("a").add(4);
  reg.gauge("g").set(2.5);
  EXPECT_EQ(reg.counter("a").value(), 7);
  EXPECT_EQ(reg.gauge("g").value(), 2.5);
}

TEST(MetricsTest, SnapshotIsNameSortedRegardlessOfRegistrationOrder) {
  MetricsRegistry forward;
  forward.counter("alpha").add(1);
  forward.counter("beta").add(2);
  MetricsRegistry reverse;
  reverse.counter("beta").add(2);
  reverse.counter("alpha").add(1);

  const MetricsSnapshot a = forward.snapshot();
  const MetricsSnapshot b = reverse.snapshot();
  ASSERT_EQ(a.counters.size(), 2u);
  EXPECT_EQ(a.counters[0].first, "alpha");
  EXPECT_EQ(a.counters[1].first, "beta");
  // Identical exports — registration order never leaks into output bytes.
  JsonWriter ja, jb;
  metrics_json(ja, a);
  metrics_json(jb, b);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(MetricsTest, HistogramBucketPlacementAndOverflow) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {10, 20, 30});
  h.observe(5);    // (-inf, 10]
  h.observe(10);   // boundary lands in its own bucket
  h.observe(15);   // (10, 20]
  h.observe(30);   // (20, 30]
  h.observe(31);   // overflow
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.counts[3], 1);
  EXPECT_EQ(snap.total, 5);
  EXPECT_EQ(snap.sum, 5 + 10 + 15 + 30 + 31);
}

TEST(MetricsTest, HistogramMergeIsAssociativeAndCommutative) {
  const std::vector<double> bounds = {1, 2, 4};
  auto make = [&](std::vector<double> samples) {
    Histogram h("m", bounds);
    for (double s : samples) h.observe(s);
    return h.snapshot();
  };
  const HistogramSnapshot a = make({0.5, 3});
  const HistogramSnapshot b = make({1.5, 9});
  const HistogramSnapshot c = make({2, 2, 0.1});

  const HistogramSnapshot left = merge(merge(a, b), c);
  const HistogramSnapshot right = merge(a, merge(b, c));
  EXPECT_EQ(left.counts, right.counts);
  EXPECT_EQ(left.total, right.total);
  EXPECT_EQ(left.total, 7);
  const HistogramSnapshot swapped = merge(b, a);
  EXPECT_EQ(merge(a, b).counts, swapped.counts);
}

TEST(MetricsTest, ConcurrentCounterBumpsSumExactly) {
  MetricsRegistry reg;
  Counter& c = reg.counter("n");
  util::ThreadPool pool(4);
  pool.parallel_for(1000, [&](std::int64_t) { c.add(1); });
  EXPECT_EQ(c.value(), 1000);
}

TEST(MetricsTest, ResetDropsEverything) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  reg.gauge("g").set(1);
  reg.histogram("h", {1}).observe(0.5);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(MetricsTest, CollectionFlagDefaultsOffAndToggles) {
  EXPECT_FALSE(metrics_collection());
  set_metrics_collection(true);
  EXPECT_TRUE(metrics_collection());
  set_metrics_collection(false);
  EXPECT_FALSE(metrics_collection());
}

TEST(MetricsTest, JsonExportCarriesSchemaAndAllKinds) {
  MetricsRegistry reg;
  reg.counter("c").add(2);
  reg.gauge("g").set(1.5);
  reg.histogram("h", {10}).observe(3);
  JsonWriter json;
  metrics_json(json, reg.snapshot());
  const std::string text = json.str();
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  EXPECT_NE(text.find("\"c\":2"), std::string::npos);
}

TEST(TraceTest, AmbientTracerDefaultsToNull) {
  EXPECT_EQ(tracer(), nullptr);
  // WallSpan on a null tracer is a no-op, not a crash.
  { WallSpan span(nullptr, LaneId{kDsePid, 0}, "noop", "test"); }
}

TEST(TraceTest, JsonIsWellFormedAndLaneOrdered) {
  Tracer t;
  // Recorded against interleaved lanes; export must come out in LaneId
  // order (serving pid 1 before dse pid 2, tids ascending within a pid).
  t.name_lane({kDsePid, 0}, "dse", "driver");
  t.name_lane({kServingPid, 1}, "serving", "shard 1");
  t.name_lane({kServingPid, 0}, "serving", "shard 0");
  t.complete({kDsePid, 0}, "round 1", "dse", 10, 5);
  t.complete({kServingPid, 1}, "batch", "serving", 0, 100);
  t.instant({kServingPid, 0}, "checkpoint", "serving", 42);
  t.counter({kServingPid, 0}, "queue depth", 7, 3);

  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Lane order: shard 0 metadata precedes shard 1, which precedes dse.
  const std::size_t shard0 = json.find("shard 0");
  const std::size_t shard1 = json.find("shard 1");
  const std::size_t dse = json.find("\"dse\"");
  ASSERT_NE(shard0, std::string::npos);
  ASSERT_NE(shard1, std::string::npos);
  ASSERT_NE(dse, std::string::npos);
  EXPECT_LT(shard0, shard1);
  EXPECT_LT(shard1, dse);
  EXPECT_EQ(t.events(), 4);
  EXPECT_EQ(t.dropped(), 0);
}

TEST(TraceTest, IdenticalRecordingsProduceIdenticalBytes) {
  auto record = [] {
    Tracer t;
    t.name_lane({kServingPid, 0}, "serving", "shard 0");
    for (int i = 0; i < 50; ++i) {
      t.complete({kServingPid, 0}, "batch b" + std::to_string(i % 3),
                 "serving", i * 10.0, 5.0,
                 {{"requests", static_cast<double>(i)}});
    }
    return t.to_json();
  };
  EXPECT_EQ(record(), record());
}

TEST(TraceTest, LaneCapacityDropsDeterministically) {
  Tracer t(TracerOptions{.lane_capacity = 10});
  for (int i = 0; i < 25; ++i) {
    t.complete({kServingPid, 0}, "e" + std::to_string(i), "serving", i, 1);
  }
  EXPECT_EQ(t.events(), 10);
  EXPECT_EQ(t.dropped(), 15);
  const std::string json = t.to_json();
  // The export annotates the truncation so a viewer can tell.
  EXPECT_NE(json.find("beyond lane capacity"), std::string::npos);
  // The first 10 events survive; event 10+ never appears.
  EXPECT_NE(json.find("\"e9\""), std::string::npos);
  EXPECT_EQ(json.find("\"e10\""), std::string::npos);
}

TEST(TraceTest, InstallAndUninstallRoundTrip) {
  Tracer t;
  install_tracer(&t);
  EXPECT_EQ(tracer(), &t);
  {
    WallSpan span(tracer(), LaneId{kDsePid, 0}, "scoped", "test");
  }
  install_tracer(nullptr);
  EXPECT_EQ(tracer(), nullptr);
  EXPECT_EQ(t.events(), 1);
}

TEST(TraceTest, ConcurrentAppendsKeepEveryEvent) {
  Tracer t;
  util::ThreadPool pool(4);
  pool.parallel_for(200, [&](std::int64_t i) {
    // One lane per index parity: contended appends must not lose events.
    t.complete({kPoolPid, static_cast<int>(i % 2)},
               "task " + std::to_string(i), "pool", static_cast<double>(i),
               1.0);
  });
  EXPECT_EQ(t.events(), 200);
}

TEST(ObservationScopeTest, EmptyPathsStayDisabled) {
  ObservationScope scope("", "");
  EXPECT_EQ(tracer(), nullptr);
  EXPECT_FALSE(metrics_collection());
  EXPECT_TRUE(scope.finish());
}

TEST(ObservationScopeTest, InstallsAndTearsDownTracer) {
  const std::string path = ::testing::TempDir() + "obs_scope_trace.json";
  {
    ObservationScope scope("", path);
    ASSERT_NE(tracer(), nullptr);
    tracer()->complete({kDsePid, 0}, "work", "test", 0, 1);
    EXPECT_TRUE(scope.finish());
    EXPECT_EQ(tracer(), nullptr);  // finish() tears down immediately
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"work\""), std::string::npos);
}

}  // namespace
}  // namespace fcad::obs
